"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``serve`` — run one serving simulation and print the summary.
* ``compare`` — run all systems on one workload, normalized to a baseline.
* ``cluster`` — shard a Poisson arrival trace across N replicas under a
  routing policy; report per-replica utilization/reschedules and p99.
  The flags are sugar: they assemble a single-tenant
  :class:`~repro.scenario.ScenarioSpec` and run it through
  :func:`~repro.scenario.run_scenario`.
* ``run`` — execute declarative scenario JSON files (fleet, workload,
  multi-tenant traffic + SLOs, routing) and report per-replica,
  aggregate, and per-tenant results; several files form a batch that
  ``--workers`` fans across processes; ``--json`` exports the result(s).
* ``sweep`` — run a design-space sweep: ``grid`` prices an RLP x TLP x
  context cartesian grid through the vectorized batch path; ``moe``
  crosses expert-routing axes (num_experts / top-k / expert FFN dim)
  with the operating grid, vectorized per MoE variant; ``tlp`` sweeps
  the speculation length through full serving runs; ``fc-stacks`` /
  ``attn-link`` / ``gpu-count`` / ``alpha`` re-run the serving-level
  configuration sweeps (optionally process-parallel via ``--workers``).
  All modes export CSV/JSON.
* ``figures`` — regenerate a paper figure's rows (fig2..fig12, headline).
* ``calibrate`` — report the offline-calibrated alpha for a model.
* ``list`` — enumerate registered models, systems, routers, sweep modes,
  and scenario spec fields.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional

from repro import __version__
from repro.analysis.report import format_table
from repro.cluster import available_routers
from repro.errors import ConfigurationError
from repro.models.config import available_models, get_model
from repro.scenario import (
    ARRIVAL_PROCESSES,
    CORE_CHOICES,
    REPLICA_ROLES,
    FleetSpec,
    MoESpec,
    ReplicaSpec,
    RoutingSpec,
    ScenarioResult,
    ScenarioSpec,
    SLOSpec,
    TenantSpec,
    TrafficSpec,
    WorkloadSpec,
    apply_core_mode,
    load_scenario,
    run_scenario,
    run_scenarios,
    scenario_spec_fields,
)
from repro.serving.dataset import available_categories, sample_requests
from repro.serving.engine import CONTEXT_MODES, ServingEngine
from repro.serving.metrics import energy_efficiency, speedup
from repro.serving.speculative import SpeculationConfig
from repro.serving.tlp_policy import TLP_POLICY_NAMES
from repro.systems.papi import PAPISystem
from repro.systems.registry import available_systems, build_system

#: Registered design-space sweep modes (parser choices and ``repro list``).
SWEEP_MODES = (
    "grid", "moe", "tlp", "fc-stacks", "attn-link", "gpu-count", "alpha"
)


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="llama-65b", help="model name")
    parser.add_argument("--batch", type=int, default=16, help="batch size (RLP)")
    parser.add_argument("--spec", type=int, default=2,
                        help="speculation length (TLP)")
    parser.add_argument("--category", default="creative-writing",
                        choices=("creative-writing", "general-qa"))
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--context-mode", default="per-request",
                        choices=CONTEXT_MODES,
                        help="attention context accounting (mean reproduces "
                             "the paper-figure approximation)")


def _run(system_name: str, args: argparse.Namespace):
    engine = ServingEngine(
        system=build_system(system_name),
        model=get_model(args.model),
        speculation=SpeculationConfig(speculation_length=args.spec),
        seed=args.seed,
        context_mode=args.context_mode,
    )
    requests = sample_requests(args.category, args.batch, seed=args.seed)
    return engine.run(requests)


def cmd_serve(args: argparse.Namespace) -> int:
    summary = _run(args.system, args)
    print(
        format_table(
            ["metric", "value"],
            [
                ["system", summary.system],
                ["model", summary.model],
                ["end-to-end seconds", summary.total_seconds],
                ["decode seconds", summary.decode_seconds],
                ["energy (kJ)", summary.total_energy / 1e3],
                ["tokens generated", summary.tokens_generated],
                ["tokens / second", summary.tokens_per_second],
                ["iterations", summary.iterations],
                ["reschedules", summary.reschedules],
                ["fc placement", str(summary.fc_target_iterations)],
            ],
            title=f"{summary.system}: {args.category} batch={args.batch} "
                  f"spec={args.spec}",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    summaries = {name: _run(name, args) for name in available_systems()}
    baseline = summaries[args.baseline]
    rows = [
        [name, s.total_seconds, speedup(baseline, s),
         energy_efficiency(baseline, s), s.tokens_per_second]
        for name, s in summaries.items()
    ]
    print(
        format_table(
            ["system", "seconds", "speedup", "energy eff.", "tokens/s"],
            rows,
            title=f"All systems on {args.model} / {args.category} "
                  f"(batch={args.batch}, spec={args.spec}, "
                  f"baseline={args.baseline})",
        )
    )
    return 0


def scenario_from_cluster_args(args: argparse.Namespace) -> ScenarioSpec:
    """Assemble the single-tenant scenario the ``cluster`` flags describe.

    The first ``--moe-replicas`` replicas serve the MoE variant (their
    group comes first so replica ids match the historical flag path), the
    rest the dense default workload.
    """
    if args.moe_replicas < 0:
        raise SystemExit("--moe-replicas must be non-negative")
    if args.moe_replicas > args.replicas:
        raise SystemExit("--moe-replicas cannot exceed --replicas")
    workload = WorkloadSpec(
        model=args.model,
        speculation_length=args.spec,
        acceptance_rate=args.acceptance,
        tlp_policy=args.tlp_policy,
        context_mode=args.context_mode,
    )
    groups = []
    if args.moe_replicas > 0:
        moe = MoESpec(
            num_experts=args.experts,
            experts_per_token=args.topk,
            expert_ffn_dim=args.expert_ffn,
        )
        groups.append(
            ReplicaSpec(
                system=args.system,
                count=args.moe_replicas,
                max_batch_size=args.max_batch,
                workload=dataclasses.replace(workload, moe=moe),
            )
        )
    if args.replicas - args.moe_replicas > 0:
        groups.append(
            ReplicaSpec(
                system=args.system,
                count=args.replicas - args.moe_replicas,
                max_batch_size=args.max_batch,
            )
        )
    return ScenarioSpec(
        name="cluster",
        seed=args.seed,
        workload=workload,
        fleet=FleetSpec(replicas=tuple(groups), step_cache=args.step_cache),
        tenants=(
            TenantSpec(
                traffic=TrafficSpec(
                    category=args.category,
                    requests=args.requests,
                    rate_per_s=args.rate,
                ),
            ),
        ),
        routing=RoutingSpec(policy=args.router),
    )


def _print_replica_table(summary, title: str) -> None:
    print(
        format_table(
            ["replica", "model", "role", "served", "tokens", "iterations",
             "utilization", "reschedules", "acceptance", "E[experts]"],
            [
                [r.replica_id, r.model, r.role, r.requests_served,
                 r.tokens_generated, r.iterations, r.utilization,
                 r.reschedules, r.acceptance_rate, r.mean_active_experts]
                for r in summary.replicas
            ],
            title=title,
        )
    )


def _print_pool_tables(summary) -> None:
    """Per-pool and handoff-latency tables for disaggregated runs."""
    if not summary.pools:
        return
    print(
        format_table(
            ["pool", "replicas", "served", "transferred", "tokens",
             "utilization", "queueing (s)"],
            [
                [p.role, p.replicas, p.requests_served,
                 p.requests_transferred, p.tokens_generated,
                 p.utilization, p.queueing_seconds]
                for p in summary.pools.values()
            ],
            title="Per-pool report",
        )
    )
    rows = []
    for label, stats in (
        ("time to first token", summary.ttft),
        ("KV-transfer wait", summary.transfer_wait),
    ):
        if stats:
            rows.append(
                [label, stats["mean_s"], stats["p50_s"], stats["p99_s"],
                 int(stats["samples"])]
            )
    if rows:
        print(
            format_table(
                ["metric", "mean (s)", "p50 (s)", "p99 (s)", "samples"],
                rows,
                title="Handoff latency",
            )
        )


def _print_session_tables(summary) -> None:
    """Prefix-cache and session rollups; skipped for sessionless runs."""
    if summary.prefix_cache:
        cache = summary.prefix_cache
        print(
            format_table(
                ["metric", "value"],
                [
                    ["lookup hits", int(cache["hits"])],
                    ["lookup misses", int(cache["misses"])],
                    ["hit rate", cache["hit_rate"]],
                    ["evictions", int(cache["evictions"])],
                    ["prefill tokens saved", int(cache["cached_tokens"])],
                ],
                title="Prefix cache",
            )
        )
    sessions = summary.sessions
    if sessions:
        latency = sessions["followup_latency"]
        print(
            format_table(
                ["metric", "value"],
                [
                    ["sessions", int(sessions["sessions"])],
                    ["turns submitted", int(sessions["turns_submitted"])],
                    ["turns served", int(sessions["turns_served"])],
                    [
                        "cached prefix tokens",
                        int(sessions["cached_prefix_tokens"]),
                    ],
                    ["follow-up mean (s)", latency["mean_s"]],
                    ["follow-up p50 (s)", latency["p50_s"]],
                    ["follow-up p99 (s)", latency["p99_s"]],
                ],
                title="Session workload",
            )
        )


def _print_aggregate_table(summary) -> None:
    aggregate_rows = [
        ["makespan seconds", summary.makespan_seconds],
        ["tokens / second", summary.tokens_per_second],
        ["p50 latency (s)", summary.latency_percentile(50)],
        ["p99 latency (s)", summary.latency_percentile(99)],
        ["mean latency (s)", summary.mean_latency],
        ["total reschedules", summary.total_reschedules],
    ]
    for key, value in summary.router_cache.items():
        aggregate_rows.append([f"router cache {key}", value])
    for key, value in summary.probe_memo.items():
        aggregate_rows.append([f"probe memo {key}", value])
    for key, value in summary.step_macro.items():
        aggregate_rows.append([f"step macro {key}", int(value)])
    print(format_table(["metric", "value"], aggregate_rows,
                       title="Cluster aggregate"))


def _print_tenant_table(result: ScenarioResult) -> None:
    print(
        format_table(
            ["tenant", "submitted", "admitted", "rejected", "deferrals",
             "served", "p50 (s)", "p99 (s)", "SLO p99 (s)", "attainment"],
            [
                [t.tenant, t.submitted, t.admitted, t.rejected, t.deferrals,
                 t.served, t.p50_latency_s, t.p99_latency_s,
                 t.slo_p99_seconds, t.slo_attainment]
                for t in result.tenants.values()
            ],
            title="Per-tenant SLO report",
        )
    )


def cmd_cluster(args: argparse.Namespace) -> int:
    spec = scenario_from_cluster_args(args)
    if args.core:
        spec = apply_core_mode(spec, args.core)
    try:
        result = run_scenario(spec)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    summary = result.summary
    _print_replica_table(
        summary,
        title=f"{args.replicas}x {args.system} / router={summary.router} "
              f"({args.requests} requests @ {args.rate}/s, "
              f"tlp-policy={args.tlp_policy})",
    )
    _print_aggregate_table(summary)
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    specs = []
    for path in args.scenarios:
        try:
            specs.append(load_scenario(path))
        except OSError as exc:
            raise SystemExit(f"cannot read scenario file: {exc}") from None
        except ConfigurationError as exc:
            raise SystemExit(f"{path}: {exc}") from None
    if getattr(args, "core", ""):
        specs = [apply_core_mode(spec, args.core) for spec in specs]
    shards = getattr(args, "shards", 1)
    try:
        if shards > 1:
            results = [run_scenario(spec, shards=shards) for spec in specs]
        else:
            results = run_scenarios(specs, workers=args.workers)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from None
    for result in results:
        spec = result.spec
        summary = result.summary
        _print_replica_table(
            summary,
            title=f"scenario {spec.name!r}: "
                  f"{len(summary.replicas)} replicas / router={summary.router} "
                  f"({len(spec.tenants)} tenants)",
        )
        _print_pool_tables(summary)
        _print_session_tables(summary)
        _print_aggregate_table(summary)
        _print_tenant_table(result)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            if len(results) == 1:
                handle.write(results[0].to_json())
            else:
                import json as _json

                handle.write(
                    _json.dumps(
                        [result.to_dict() for result in results], indent=2
                    )
                    + "\n"
                )
        noun = "result" if len(results) == 1 else "results"
        print(f"wrote {len(results)} scenario {noun} to {args.json}")
    return 0


def _parse_axis(text: str) -> List[int]:
    """Parse an integer axis spec: ``1,2,4`` and/or ``lo:hi[:step]``.

    Range tokens are inclusive of ``hi`` when the step lands on it:
    ``1:8:2`` is 1, 3, 5, 7 and ``2:8:2`` is 2, 4, 6, 8.
    """
    values: List[int] = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if ":" in token:
            parts = token.split(":")
            if len(parts) not in (2, 3):
                raise SystemExit(f"bad axis range {token!r}; use lo:hi[:step]")
            try:
                lo, hi = int(parts[0]), int(parts[1])
                step = int(parts[2]) if len(parts) == 3 else 1
            except ValueError:
                raise SystemExit(
                    f"bad axis range {token!r}; bounds must be integers"
                ) from None
            if step <= 0 or hi < lo:
                raise SystemExit(f"bad axis range {token!r}")
            values.extend(range(lo, hi + 1, step))
        else:
            try:
                values.append(int(token))
            except ValueError:
                raise SystemExit(
                    f"bad axis value {token!r}; must be an integer"
                ) from None
    if not values:
        raise SystemExit(f"axis spec {text!r} produced no values")
    if min(values) <= 0:
        raise SystemExit(
            f"axis spec {text!r} has non-positive values; "
            "RLP/TLP/context/config axes must be positive"
        )
    return values


def _export_sweep(result, args: argparse.Namespace) -> None:
    if args.csv:
        result.write_csv(args.csv)
        print(f"wrote {len(result)} rows to {args.csv}")
    if args.json:
        result.write_json(args.json)
        print(f"wrote {len(result)} rows to {args.json}")


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.design_space import (
        LINKS_BY_NAME,
        sweep_attn_link,
        sweep_fc_stacks,
        sweep_gpu_count,
    )
    from repro.analysis.sweep import (
        SweepResult,
        price_step_sweep,
        sweep_alpha,
        sweep_moe,
        sweep_tlp,
    )

    mode = args.mode
    if mode == "grid":
        system = build_system(args.system)
        model = get_model(args.model)
        result = price_step_sweep(
            system,
            model,
            _parse_axis(args.rlp),
            _parse_axis(args.tlp),
            _parse_axis(args.context),
        )
        shown = result.rows if args.all_rows else result.rows[:20]
        print(
            format_table(
                list(result.columns),
                [[row.get(col) for col in result.columns] for row in shown],
                title=f"{args.system} step grid: {len(result)} points "
                      f"({'all' if args.all_rows else 'first 20'} shown)",
            )
        )
    elif mode == "moe":
        result = sweep_moe(
            num_experts_values=_parse_axis(args.experts),
            experts_per_token_values=_parse_axis(args.topk),
            expert_ffn_dim_values=(
                _parse_axis(args.expert_ffn) if args.expert_ffn else ()
            ),
            model_name=args.model,
            system=build_system(args.system),
            rlp_values=_parse_axis(args.rlp),
            tlp_values=_parse_axis(args.tlp),
            context_values=_parse_axis(args.context),
        )
        shown = result.rows if args.all_rows else result.rows[:20]
        print(
            format_table(
                list(result.columns),
                [[row.get(col) for col in result.columns] for row in shown],
                title=f"{args.system} MoE sweep: {len(result)} points "
                      f"({'all' if args.all_rows else 'first 20'} shown)",
            )
        )
    elif mode == "tlp":
        lengths = _parse_axis(args.values) if args.values else [1, 2, 4, 8]
        summaries = sweep_tlp(
            speculation_lengths=lengths,
            model_name=args.model,
            batch=args.batch,
            acceptance_rate=args.acceptance,
            seed=args.seed,
            workers=args.workers,
        )
        rows = [
            {
                "speculation_length": s,
                "expected_tokens_per_iter": SpeculationConfig(
                    speculation_length=s, acceptance_rate=args.acceptance
                ).expected_tokens_per_iteration(),
                "decode_seconds": summary.decode_seconds,
                "draft_seconds": summary.draft_seconds,
                "tokens_per_second": summary.tokens_per_second,
                "reschedules": summary.reschedules,
            }
            for s, summary in summaries.items()
        ]
        result = SweepResult.from_rows(rows)
        print(
            format_table(
                list(result.columns),
                result.to_table_rows(),
                title=f"TLP sweep ({args.model}, batch={args.batch}, "
                      f"acceptance={args.acceptance})",
            )
        )
    elif mode == "alpha":
        alphas = tuple(
            float(token) for token in args.values.split(",") if token.strip()
        ) if args.values else (2.0, 8.0, 20.0, 64.0, 256.0, 4096.0)
        summaries, calibrated = sweep_alpha(
            alphas=alphas,
            model_name=args.model,
            batch=args.batch,
            spec=args.spec,
            seed=args.seed,
            workers=args.workers,
        )
        rows = [
            {
                "alpha": alpha,
                "decode_seconds": s.decode_seconds,
                "reschedules": s.reschedules,
                "pu_iterations": s.fc_target_iterations.get("pu", 0),
                "fc_pim_iterations": s.fc_target_iterations.get("fc-pim", 0),
            }
            for alpha, s in summaries.items()
        ]
        result = SweepResult.from_rows(rows)
        print(
            format_table(
                list(result.columns),
                result.to_table_rows(),
                title=f"Alpha sweep (calibrated alpha = {calibrated:.1f})",
            )
        )
    else:
        if mode == "fc-stacks":
            values = _parse_axis(args.values) if args.values else (10, 20, 30, 45, 60)
            points = sweep_fc_stacks(values, model_name=args.model,
                                     workers=args.workers)
        elif mode == "attn-link":
            names = (
                [t.strip() for t in args.values.split(",") if t.strip()]
                if args.values else list(LINKS_BY_NAME)
            )
            unknown = [name for name in names if name not in LINKS_BY_NAME]
            if unknown:
                raise SystemExit(
                    f"unknown links {unknown}; known: {sorted(LINKS_BY_NAME)}"
                )
            points = sweep_attn_link([LINKS_BY_NAME[n] for n in names],
                                     model_name=args.model,
                                     workers=args.workers)
        elif mode == "gpu-count":
            values = _parse_axis(args.values) if args.values else (2, 4, 6, 12)
            points = sweep_gpu_count(values, model_name=args.model,
                                     workers=args.workers)
        else:  # pragma: no cover - argparse choices guard this
            raise SystemExit(f"unknown sweep mode {mode!r}")
        result = SweepResult.from_rows([
            {
                "label": p.label,
                "decode_seconds": p.decode_seconds,
                "energy_joules": p.energy_joules,
                "tokens_per_second": p.tokens_per_second,
                "fits_model": p.fits_model,
            }
            for p in points
        ])
        print(
            format_table(
                list(result.columns),
                result.to_table_rows(),
                title=f"{mode} sweep ({args.model})",
            )
        )
    _export_sweep(result, args)
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    system = PAPISystem()
    alpha = system.calibrate(get_model(args.model))
    print(f"calibrated alpha for {args.model}: {alpha:.1f} "
          f"(FC runs on PUs when RLP x TLP > alpha)")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("models:     " + ", ".join(available_models()))
    print("systems:    " + ", ".join(available_systems()))
    print("routers:    " + ", ".join(available_routers()))
    print("sweeps:     " + ", ".join(SWEEP_MODES))
    print("categories: " + ", ".join(available_categories()))
    print("tlp-policies: " + ", ".join(TLP_POLICY_NAMES))
    print("core modes: " + ", ".join(CORE_CHOICES)
          + "  (repro run/cluster --core; bit-identical summaries)")
    print("arrival processes: " + ", ".join(ARRIVAL_PROCESSES)
          + "  (tenants[].traffic.arrival.kind)")
    print("replica roles: " + ", ".join(REPLICA_ROLES)
          + "  (fleet.replicas[].role; prefill/decode pools need "
          + "fleet.interconnect)")
    print("scenario spec fields (repro run <scenario.json>):")
    for spec_name, field_names in scenario_spec_fields().items():
        print(f"  {spec_name}: {', '.join(field_names)}")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis import evaluation, motivation

    figure = args.figure.lower()
    if figure in ("fig2", "fig02"):
        points = motivation.fig2_roofline_study()
        rows = [[p.kernel, p.batch_size, p.speculation_length,
                 p.point.arithmetic_intensity,
                 "memory" if p.point.memory_bound else "compute"]
                for p in points]
        print(format_table(
            ["kernel", "batch", "spec", "AI", "bound"], rows, title="Figure 2"))
    elif figure in ("fig4", "fig04"):
        cells = motivation.fig4_fc_latency()
        rows = [[c.device, c.batch_size, c.speculation_length,
                 c.normalized_to_a100] for c in cells]
        print(format_table(
            ["device", "batch", "spec", "norm latency"], rows, title="Figure 4"))
    elif figure in ("fig7", "fig07"):
        result = motivation.fig7_energy_power()
        rows = [[c.config, c.reuse_level, c.watts, c.within_budget]
                for c in result["power"]]
        print(format_table(
            ["config", "reuse", "watts", "in budget"], rows, title="Figure 7(c)"))
    elif figure in ("fig8", "fig08"):
        cells = evaluation.fig8_end_to_end()
        rows = [[c.model, c.speculation_length, c.batch_size, c.system,
                 c.speedup, c.energy_efficiency] for c in cells]
        print(format_table(
            ["model", "spec", "batch", "system", "speedup", "energy eff."],
            rows, title="Figure 8"))
    elif figure == "headline":
        numbers = evaluation.headline_numbers()
        print(format_table(
            ["metric", "value"], list(numbers.items()), title="Headline"))
    else:
        print(f"unknown figure {args.figure!r}; "
              "try fig2, fig4, fig7, fig8, headline", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PAPI (ASPLOS 2025) reproduction: PIM-enabled "
                    "heterogeneous LLM decoding simulator",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run one serving simulation")
    serve.add_argument("--system", default="papi",
                       choices=available_systems())
    _add_workload_args(serve)
    serve.set_defaults(fn=cmd_serve)

    compare = sub.add_parser("compare", help="compare all systems")
    compare.add_argument("--baseline", default="a100-attacc",
                         choices=available_systems())
    _add_workload_args(compare)
    compare.set_defaults(fn=cmd_compare)

    cluster = sub.add_parser(
        "cluster", help="multi-replica serving under a routing policy"
    )
    cluster.add_argument("--system", default="papi",
                         choices=available_systems())
    cluster.add_argument("--replicas", type=int, default=4,
                         help="number of system replicas")
    cluster.add_argument("--router", default="intensity",
                         choices=available_routers())
    cluster.add_argument("--requests", type=int, default=64,
                         help="trace length (requests)")
    cluster.add_argument("--rate", type=float, default=32.0,
                         help="Poisson arrival rate (requests/s)")
    cluster.add_argument("--max-batch", type=int, default=16,
                         help="per-replica continuous-batching slots")
    cluster.add_argument("--no-step-cache", dest="step_cache",
                         action="store_false",
                         help="disable the shared step-cost cache")
    cluster.add_argument("--model", default="llama-65b", help="model name")
    cluster.add_argument("--spec", type=int, default=2,
                         help="speculation length (TLP)")
    cluster.add_argument("--acceptance", type=float, default=0.8,
                         help="per-token draft acceptance probability "
                              "(1.0 = always accept)")
    cluster.add_argument("--tlp-policy", default="fixed",
                         choices=("fixed", "acceptance", "utilization"),
                         help="dynamic speculation-length policy per replica")
    cluster.add_argument("--moe-replicas", type=int, default=0,
                         help="how many replicas serve the MoE variant "
                              "(0 = all dense)")
    cluster.add_argument("--experts", type=int, default=8,
                         help="MoE experts per layer (moe replicas)")
    cluster.add_argument("--topk", type=int, default=2,
                         help="MoE experts per token (moe replicas)")
    cluster.add_argument("--expert-ffn", type=int, default=0,
                         help="expert FFN inner dim (0 = ffn_dim / experts, "
                              "capacity-neutral)")
    cluster.add_argument("--category", default="creative-writing",
                         choices=("creative-writing", "general-qa"))
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--context-mode", default="per-request",
                         choices=CONTEXT_MODES)
    cluster.add_argument("--core", default="", choices=CORE_CHOICES,
                         help="pin the simulation core preset (scalar "
                              "reference / batched event / vectorized "
                              "array); all three report bit-identical "
                              "summaries")
    cluster.set_defaults(fn=cmd_cluster)

    run = sub.add_parser(
        "run",
        help="run declarative scenario JSON files (fleet, tenants, "
             "SLOs, routing) through run_scenarios()",
    )
    run.add_argument("scenarios", nargs="+", metavar="scenario",
                     help="path(s) to scenario JSON files; several files "
                          "form a batch (see --workers)")
    run.add_argument("--workers", type=int, default=0,
                     help="process-parallel workers for a scenario batch "
                          "(0/1 runs inline; outputs are identical)")
    run.add_argument("--shards", type=int, default=1,
                     help="split each scenario's tenants across N worker "
                          "processes (per-tenant traces are bit-identical "
                          "to --shards 1; each shard serves its tenants "
                          "on its own fleet copy)")
    run.add_argument("--core", default="", choices=CORE_CHOICES,
                     help="override each scenario's simulation core "
                          "(scalar reference / batched event / vectorized "
                          "array); summaries are bit-identical across "
                          "cores")
    run.add_argument("--json", default="",
                     help="export the full result (aggregate, replicas, "
                          "per-tenant SLO reports) to a JSON file; a "
                          "multi-scenario batch writes a JSON array")
    run.set_defaults(fn=cmd_run)

    sweep = sub.add_parser(
        "sweep", help="design-space sweeps (vectorized grid or config axes)"
    )
    sweep.add_argument("mode",
                       choices=SWEEP_MODES,
                       help="grid prices RLP x TLP x context through the "
                            "vectorized path; moe crosses expert-routing "
                            "axes with that grid; tlp sweeps speculation "
                            "length through serving runs; the rest sweep "
                            "system configs")
    sweep.add_argument("--model", default="llama-65b", help="model name")
    sweep.add_argument("--system", default="papi",
                       choices=available_systems(),
                       help="system priced by the grid mode")
    sweep.add_argument("--rlp", default="1:32",
                       help="grid RLP axis: comma list and/or lo:hi[:step]")
    sweep.add_argument("--tlp", default="1,2,4",
                       help="grid TLP axis: comma list and/or lo:hi[:step]")
    sweep.add_argument("--context", default="256:4096:256",
                       help="grid context axis: comma list and/or lo:hi[:step]")
    sweep.add_argument("--experts", default="8,16,32,64",
                       help="moe sweep num_experts axis")
    sweep.add_argument("--topk", default="1,2,4",
                       help="moe sweep experts_per_token axis")
    sweep.add_argument("--expert-ffn", default="",
                       help="moe sweep expert FFN inner-dim axis "
                            "(default: ffn_dim/8 and ffn_dim/4)")
    sweep.add_argument("--acceptance", type=float, default=0.8,
                       help="tlp sweep draft acceptance probability")
    sweep.add_argument("--values", default="",
                       help="config-axis values for tlp/fc-stacks/attn-link/"
                            "gpu-count/alpha (defaults per mode)")
    sweep.add_argument("--batch", type=int, default=32,
                       help="alpha/tlp sweep batch size")
    sweep.add_argument("--spec", type=int, default=2,
                       help="alpha sweep speculation length")
    sweep.add_argument("--seed", type=int, default=29,
                       help="alpha/tlp sweep RNG seed")
    sweep.add_argument("--workers", type=int, default=0,
                       help="process-parallel workers for config sweeps")
    sweep.add_argument("--csv", default="", help="export rows to a CSV file")
    sweep.add_argument("--json", default="", help="export rows to a JSON file")
    sweep.add_argument("--all-rows", action="store_true",
                       help="print every grid row (default: first 20)")
    sweep.set_defaults(fn=cmd_sweep)

    figures = sub.add_parser("figures", help="regenerate a paper figure")
    figures.add_argument("figure", help="fig2|fig4|fig7|fig8|headline")
    figures.set_defaults(fn=cmd_figures)

    calibrate = sub.add_parser("calibrate", help="calibrate alpha")
    calibrate.add_argument("--model", default="llama-65b")
    calibrate.set_defaults(fn=cmd_calibrate)

    lister = sub.add_parser(
        "list",
        help="list models, systems, routers, sweeps, and scenario fields",
    )
    lister.set_defaults(fn=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
