"""A simple per-bank DRAM controller.

The controller owns one :class:`~repro.dram.bank.Bank` and serves an ordered
stream of :class:`~repro.dram.commands.Request` objects. It implements an
open-page policy: a row stays open until a request for a different row
arrives (row-buffer conflict), at which point it precharges and activates
the new row. This matches how the paper's PIM executes GEMV: weight rows
are streamed sequentially, so consecutive column reads hit the open row and
the activation count equals the number of distinct rows touched (divided by
the data-reuse level when activations are amortized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.dram.bank import Bank, BankState
from repro.dram.commands import Command, CommandKind, Request
from repro.dram.timing import DRAMTimings


@dataclass
class BankController:
    """Serves requests against a single bank, tracking elapsed cycles.

    Attributes:
        timings: DRAM timing parameters.
        bank: The bank being controlled (created on construction).
        cycle: Current cycle; advances as commands issue.
    """

    timings: DRAMTimings
    bank: Bank = field(init=False)
    cycle: int = 0

    def __post_init__(self) -> None:
        self.bank = Bank(timings=self.timings)

    def _issue_when_ready(self, command: Command) -> None:
        """Advance time to the command's earliest legal cycle and issue it."""
        earliest = self.bank.earliest_issue(command.kind)
        self.cycle = max(self.cycle, earliest)
        self.bank.issue(command, self.cycle)

    def serve(self, request: Request) -> int:
        """Serve one request; returns the cycle after its last command.

        Row-buffer hits skip the ACT; conflicts precharge then activate.
        """
        if self.bank.state is BankState.ACTIVE and self.bank.open_row != request.row:
            self._issue_when_ready(Command(CommandKind.PRECHARGE))
        if self.bank.state is BankState.IDLE:
            self._issue_when_ready(Command(CommandKind.ACTIVATE, row=request.row))
        kind = CommandKind.WRITE if request.is_write else CommandKind.READ
        for i in range(request.count):
            self._issue_when_ready(
                Command(kind, row=request.row, column=request.column + i)
            )
        return self.cycle

    def serve_all(self, requests: Iterable[Request]) -> int:
        """Serve an ordered request stream; returns the finishing cycle.

        The finishing cycle accounts for the final column's data transfer
        (tCCD after its issue cycle) and is the value the engine converts
        to seconds.
        """
        last = self.cycle
        for request in requests:
            last = self.serve(request)
        return last + self.timings.tCCD

    def drain(self) -> int:
        """Precharge the open row, if any; returns the cycle afterwards."""
        if self.bank.state is BankState.ACTIVE:
            self._issue_when_ready(Command(CommandKind.PRECHARGE))
        return self.cycle
