"""DRAM command and request types for the cycle-level bank model."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class CommandKind(enum.Enum):
    """DRAM commands the bank state machine understands."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"


@dataclass(frozen=True)
class Command:
    """A command issued to one bank at a given cycle.

    Attributes:
        kind: Command opcode.
        row: Target row (meaningful for ACTIVATE; kept for RD/WR for checks).
        column: Target column index within the row (RD/WR only).
    """

    kind: CommandKind
    row: int = 0
    column: int = 0

    def __post_init__(self) -> None:
        if self.row < 0 or self.column < 0:
            raise ConfigurationError("row and column must be non-negative")


@dataclass(frozen=True)
class Request:
    """A memory request against one bank: read or write ``count`` columns.

    The controller decomposes each request into ACT (if the row is not
    open), a run of RD/WR column commands, and relies on the closed-page /
    open-page policy for precharging.

    Attributes:
        row: Target row.
        column: Starting column.
        count: Number of column (burst) accesses.
        is_write: True for writes.
    """

    row: int
    column: int
    count: int = 1
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.row < 0 or self.column < 0:
            raise ConfigurationError("row and column must be non-negative")
        if self.count <= 0:
            raise ConfigurationError("count must be positive")
