"""Per-bank DRAM state machine with timing enforcement.

Each bank tracks its open row and the earliest cycle at which each command
kind may legally issue, updating those constraints as commands are applied.
This is the same structural decomposition Ramulator uses (state + timing
table), reduced to the single-bank timings that matter for PIM streaming:
tRCD, tRAS, tRP, tRC, and tCCD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.dram.commands import Command, CommandKind
from repro.dram.timing import DRAMTimings
from repro.errors import SimulationError


class BankState(enum.Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"  # precharged, no open row
    ACTIVE = "active"  # a row is open


@dataclass
class Bank:
    """One DRAM bank: open-row state plus next-allowed-issue cycles.

    Attributes:
        timings: Timing parameters governing this bank.
        state: Current row-buffer state.
        open_row: The open row when ``state`` is ACTIVE.
    """

    timings: DRAMTimings
    state: BankState = BankState.IDLE
    open_row: int = -1
    _earliest: Dict[CommandKind, int] = field(default_factory=dict)
    _last_activate: int = -(10 ** 12)
    row_activations: int = 0
    column_accesses: int = 0

    def __post_init__(self) -> None:
        for kind in CommandKind:
            self._earliest.setdefault(kind, 0)

    def earliest_issue(self, kind: CommandKind) -> int:
        """Earliest cycle at which a command of ``kind`` may issue."""
        return self._earliest[kind]

    def can_issue(self, command: Command, cycle: int) -> bool:
        """Whether ``command`` is legal at ``cycle`` (state + timing)."""
        if cycle < self._earliest[command.kind]:
            return False
        if command.kind is CommandKind.ACTIVATE:
            return self.state is BankState.IDLE
        if command.kind in (CommandKind.READ, CommandKind.WRITE):
            return self.state is BankState.ACTIVE and self.open_row == command.row
        if command.kind is CommandKind.PRECHARGE:
            return self.state is BankState.ACTIVE
        return False

    def issue(self, command: Command, cycle: int) -> None:
        """Apply ``command`` at ``cycle``, updating state and constraints.

        Raises:
            SimulationError: If the command is illegal at this cycle.
        """
        if not self.can_issue(command, cycle):
            raise SimulationError(
                f"illegal {command.kind.value} at cycle {cycle} "
                f"(state={self.state.value}, open_row={self.open_row}, "
                f"earliest={self._earliest[command.kind]})"
            )
        t = self.timings
        if command.kind is CommandKind.ACTIVATE:
            self.state = BankState.ACTIVE
            self.open_row = command.row
            self.row_activations += 1
            self._last_activate = cycle
            self._earliest[CommandKind.READ] = max(
                self._earliest[CommandKind.READ], cycle + t.tRCD
            )
            self._earliest[CommandKind.WRITE] = max(
                self._earliest[CommandKind.WRITE], cycle + t.tRCD
            )
            self._earliest[CommandKind.PRECHARGE] = max(
                self._earliest[CommandKind.PRECHARGE], cycle + t.tRAS
            )
            self._earliest[CommandKind.ACTIVATE] = max(
                self._earliest[CommandKind.ACTIVATE], cycle + t.tRC
            )
        elif command.kind in (CommandKind.READ, CommandKind.WRITE):
            self.column_accesses += 1
            self._earliest[CommandKind.READ] = max(
                self._earliest[CommandKind.READ], cycle + t.tCCD
            )
            self._earliest[CommandKind.WRITE] = max(
                self._earliest[CommandKind.WRITE], cycle + t.tCCD
            )
            # Data for this column is on the internal bus tCCD later; the
            # row may not precharge before the access completes.
            self._earliest[CommandKind.PRECHARGE] = max(
                self._earliest[CommandKind.PRECHARGE], cycle + t.tCCD
            )
        elif command.kind is CommandKind.PRECHARGE:
            self.state = BankState.IDLE
            self.open_row = -1
            self._earliest[CommandKind.ACTIVATE] = max(
                self._earliest[CommandKind.ACTIVATE], cycle + t.tRP
            )
