"""DRAM refresh modeling (tREFI / tRFC).

PIM execution steals the banks a refresh needs, so sustained PIM
bandwidth is degraded by the refresh duty cycle: every ``tREFI`` the bank
is unavailable for ``tRFC``. The paper's Ramulator-based substrate models
this implicitly; we expose it as a derating factor applied to streaming
bandwidth plus a trace-level account for the cycle engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DRAMTimings
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RefreshParams:
    """Refresh timing parameters (in controller clock cycles).

    Attributes:
        tREFI: Average interval between refresh commands.
        tRFC: Duration of one refresh (bank unavailable).
    """

    tREFI: int
    tRFC: int

    def __post_init__(self) -> None:
        if self.tREFI <= 0 or self.tRFC <= 0:
            raise ConfigurationError("tREFI and tRFC must be positive")
        if self.tRFC >= self.tREFI:
            raise ConfigurationError("tRFC must be smaller than tREFI")

    @property
    def duty_cycle(self) -> float:
        """Fraction of time the bank spends refreshing."""
        return self.tRFC / self.tREFI

    @property
    def availability(self) -> float:
        """Fraction of time the bank can serve PIM accesses."""
        return 1.0 - self.duty_cycle

    def derate_bandwidth(self, bandwidth: float) -> float:
        """Sustained bandwidth after refresh stalls."""
        if bandwidth < 0:
            raise ConfigurationError("bandwidth must be non-negative")
        return bandwidth * self.availability

    def refresh_cycles(self, busy_cycles: int) -> int:
        """Refresh stall cycles incurred over ``busy_cycles`` of work."""
        if busy_cycles < 0:
            raise ConfigurationError("busy_cycles must be non-negative")
        refreshes = busy_cycles // (self.tREFI - self.tRFC)
        return refreshes * self.tRFC


#: HBM3-class refresh at the 666 MHz PIM clock: tREFI ~3.9 us => 2600
#: cycles; tRFC ~260 ns => 173 cycles. ~6.7% duty cycle — the reason
#: sustained per-bank PIM bandwidth (20.8 GB/s) sits below the raw
#: column-streaming rate.
HBM3_REFRESH = RefreshParams(tREFI=2600, tRFC=173)


def refreshed_streaming_bandwidth(
    timings: DRAMTimings, refresh: RefreshParams = HBM3_REFRESH
) -> float:
    """Streaming bandwidth of one bank including refresh stalls."""
    return refresh.derate_bandwidth(timings.streaming_bandwidth())
