"""Access-trace generators for PIM GEMV execution.

The paper's data layout (Section 6.4) stores FC weight blocks row-major in
each bank: the K^T-style partitioning means a bank streams whole DRAM rows
of weights sequentially. With decoding parallelism, each streamed row is
*reused* across ``reuse_level`` token positions before moving on, so the
activation count per computed output stays constant while the computation
per activation grows — the effect behind the paper's Figure 7.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.dram.commands import Request
from repro.dram.timing import DRAMTimings
from repro.errors import ConfigurationError


def row_major_stream(timings: DRAMTimings, total_bytes: int) -> Iterator[Request]:
    """Yield requests that stream ``total_bytes`` sequentially from a bank.

    Rows are read fully, in order, one request per row (the controller
    issues the per-column bursts). A trailing partial row issues only the
    columns it needs.
    """
    if total_bytes <= 0:
        raise ConfigurationError("total_bytes must be positive")
    full_rows, tail = divmod(total_bytes, timings.row_bytes)
    for row in range(full_rows):
        yield Request(row=row, column=0, count=timings.columns_per_row)
    if tail:
        count = -(-tail // timings.burst_bytes)  # ceil division
        yield Request(row=full_rows, column=0, count=count)


def gemv_trace(
    timings: DRAMTimings, weight_bytes: int, reuse_level: int
) -> List[Request]:
    """Trace for a bank's share of a GEMV with weight-row data reuse.

    With reuse level ``r``, each weight row is activated once and its
    columns are consumed ``r`` times by the bank's FPUs (once per token
    position). The trace therefore repeats the *column reads* of each row
    ``r`` times under a single activation — which is exactly a row-buffer
    hit pattern, so no extra activations occur.

    Args:
        timings: DRAM timing parameters.
        weight_bytes: Bytes of weights resident in this bank's share.
        reuse_level: Token positions per weight row (RLP * TLP for FC).

    Returns:
        The ordered request list for the bank.
    """
    if reuse_level <= 0:
        raise ConfigurationError("reuse_level must be positive")
    requests: List[Request] = []
    for base in row_major_stream(timings, weight_bytes):
        for _ in range(reuse_level):
            requests.append(base)
    return requests
