"""Cycle-level DRAM bank model ("Ramulator-lite").

The paper builds its PIM evaluation on a Ramulator-2.0-based simulator. This
subpackage provides the equivalent substrate for our reproduction: HBM3 bank
timing parameters, per-bank command state machines (ACT / RD / WR / PRE), a
simple FR-FCFS-style per-bank controller, a GEMV access-trace generator that
mirrors the paper's PIM data layout (Section 6.4), and an engine that runs a
trace to completion, counting cycles, row activations, and column accesses.

The analytic PIM device model in :mod:`repro.devices.pim` is calibrated
against this engine (see ``tests/test_dram_calibration.py``): the effective
per-bank bandwidth the cycle model achieves for streaming GEMV rows matches
the 20.8 GB/s figure used by the closed-form model.
"""

from repro.dram.timing import DRAMTimings, HBM3_TIMINGS
from repro.dram.commands import Command, CommandKind, Request
from repro.dram.bank import Bank, BankState
from repro.dram.controller import BankController
from repro.dram.engine import DRAMEngine, EngineStats
from repro.dram.trace import gemv_trace, row_major_stream
from repro.dram.refresh import HBM3_REFRESH, RefreshParams
from repro.dram.channel import ChannelEngine, ChannelStats

__all__ = [
    "Bank",
    "BankController",
    "BankState",
    "ChannelEngine",
    "ChannelStats",
    "Command",
    "CommandKind",
    "DRAMEngine",
    "DRAMTimings",
    "EngineStats",
    "HBM3_REFRESH",
    "HBM3_TIMINGS",
    "RefreshParams",
    "Request",
    "gemv_trace",
    "row_major_stream",
]
