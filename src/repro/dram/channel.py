"""Multi-bank channel engine: independent banks running PIM traces.

PIM banks execute GEMV slices independently (no shared command bus
contention in the bank-level PIM designs the paper builds on — each bank
group controller feeds its own FPUs). The channel engine runs one trace
per bank and reports the *makespan* plus aggregate statistics, which lets
tests verify that device-level bandwidth really is per-bank bandwidth
times bank count, and that load imbalance (uneven weight slices) degrades
the aggregate exactly as the slowest bank dictates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dram.commands import Request
from repro.dram.engine import DRAMEngine, EngineStats
from repro.dram.timing import DRAMTimings, HBM3_TIMINGS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ChannelStats:
    """Aggregate result of running per-bank traces in parallel.

    Attributes:
        per_bank: Each bank's individual statistics.
        makespan_cycles: Slowest bank's finishing cycle.
        makespan_seconds: Same, in seconds.
        total_bytes: Bytes moved across all banks.
        aggregate_bandwidth: total_bytes / makespan_seconds.
    """

    per_bank: Sequence[EngineStats]
    makespan_cycles: int
    makespan_seconds: float
    total_bytes: int
    aggregate_bandwidth: float

    @property
    def num_banks(self) -> int:
        return len(self.per_bank)

    @property
    def load_imbalance(self) -> float:
        """Makespan divided by mean bank time (1.0 = perfectly balanced)."""
        mean = sum(s.seconds for s in self.per_bank) / len(self.per_bank)
        if mean == 0:
            return 1.0
        return self.makespan_seconds / mean


class ChannelEngine:
    """Runs independent per-bank traces and aggregates their statistics."""

    def __init__(self, timings: Optional[DRAMTimings] = None) -> None:
        self.timings = timings if timings is not None else HBM3_TIMINGS
        self._engine = DRAMEngine(self.timings)

    def run(self, traces: Sequence[Sequence[Request]]) -> ChannelStats:
        """Execute one trace per bank; banks run fully in parallel."""
        if not traces:
            raise ConfigurationError("need at least one bank trace")
        per_bank: List[EngineStats] = [self._engine.run(t) for t in traces]
        makespan = max(s.cycles for s in per_bank)
        seconds = makespan * self.timings.cycle_s
        total_bytes = sum(s.bytes_transferred for s in per_bank)
        return ChannelStats(
            per_bank=per_bank,
            makespan_cycles=makespan,
            makespan_seconds=seconds,
            total_bytes=total_bytes,
            aggregate_bandwidth=total_bytes / seconds if seconds else 0.0,
        )

    def run_balanced_gemv(
        self, num_banks: int, weight_bytes: int, reuse_level: int = 1
    ) -> ChannelStats:
        """GEMV with weights sliced evenly across ``num_banks`` banks."""
        from repro.dram.trace import gemv_trace

        if num_banks <= 0:
            raise ConfigurationError("num_banks must be positive")
        if weight_bytes < num_banks:
            raise ConfigurationError("weight_bytes must cover all banks")
        share = weight_bytes // num_banks
        traces = [
            gemv_trace(self.timings, share, reuse_level)
            for _ in range(num_banks)
        ]
        return self.run(traces)
