"""DRAM timing and organization parameters.

Timings are expressed in memory-controller clock cycles, HBM3-style. The
preset below corresponds to the HBM3 configuration the paper evaluates
(5.2 Gb/s per pin, 333 MHz command clock, per Section 7.1); absolute
nanosecond values follow JEDEC-class parts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DRAMTimings:
    """Bank-level timing parameters (in controller clock cycles).

    Attributes:
        clock_hz: Controller clock frequency.
        tRCD: ACT-to-RD/WR delay.
        tRAS: ACT-to-PRE minimum.
        tRP: PRE-to-ACT delay.
        tCCD: Column-to-column delay (back-to-back RD bursts, same bank).
        tRC: Row cycle (ACT-to-ACT, same bank); must be >= tRAS + tRP.
        burst_bytes: Bytes transferred per column (RD/WR) command.
        row_bytes: Bytes per DRAM row (page size per bank).
    """

    clock_hz: float
    tRCD: int
    tRAS: int
    tRP: int
    tCCD: int
    tRC: int
    burst_bytes: int
    row_bytes: int

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ConfigurationError("clock_hz must be positive")
        for name in ("tRCD", "tRAS", "tRP", "tCCD", "tRC"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if self.tRC < self.tRAS + self.tRP:
            raise ConfigurationError("tRC must be >= tRAS + tRP")
        if self.burst_bytes <= 0 or self.row_bytes <= 0:
            raise ConfigurationError("burst_bytes and row_bytes must be positive")
        if self.row_bytes % self.burst_bytes != 0:
            raise ConfigurationError("row_bytes must be a multiple of burst_bytes")

    @property
    def cycle_s(self) -> float:
        """Seconds per controller clock cycle."""
        return 1.0 / self.clock_hz

    @property
    def columns_per_row(self) -> int:
        """Column (burst) commands needed to stream one full row."""
        return self.row_bytes // self.burst_bytes

    def streaming_row_cycles(self) -> int:
        """Cycles to activate, fully read, and precharge one row.

        For a streaming access pattern the bank overlaps nothing with other
        banks (each PIM bank works independently), so the per-row cost is
        ``tRCD + columns*tCCD`` column streaming, bounded below by ``tRAS``,
        plus ``tRP``.
        """
        read_done = self.tRCD + self.columns_per_row * self.tCCD
        return max(read_done, self.tRAS) + self.tRP

    def streaming_bandwidth(self) -> float:
        """Effective bytes/s when streaming whole rows from one bank."""
        return self.row_bytes / (self.streaming_row_cycles() * self.cycle_s)


#: HBM3-class timing preset for the bank-level PIM datapath. The PIM cores
#: run at 666 MHz (paper Section 6.2) and read 64 B per column command via
#: the wide internal bank bus. Streaming one 1 KiB row then costs
#: tRCD(9) + 16 columns * tCCD(1) = 25 cycles (>= tRAS 20), plus tRP(8)
#: => 33 cycles at 1.50 ns/cycle => ~20.7 GB/s per bank, matching the
#: 20.8 GB/s per-bank figure the paper's Attn-PIM sizing is built on.
HBM3_TIMINGS = DRAMTimings(
    clock_hz=666e6,
    tRCD=9,
    tRAS=20,
    tRP=8,
    tCCD=1,
    tRC=28,
    burst_bytes=64,
    row_bytes=1024,
)
