"""Engine tying traces, controllers, and statistics together.

The engine runs an access trace against a fresh bank controller and reports
cycles, wall-clock time, activations, and achieved bandwidth. It is the
reference against which the closed-form PIM model is calibrated, and it is
also used directly by the energy model tests: energy = activations *
E_act + column_accesses * E_col, which must agree with the analytic
per-byte constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.dram.commands import Request
from repro.dram.controller import BankController
from repro.dram.timing import DRAMTimings, HBM3_TIMINGS
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EngineStats:
    """Result of running a trace on one bank.

    Attributes:
        cycles: Total cycles from first command to last data beat.
        seconds: Wall-clock equivalent of ``cycles``.
        row_activations: ACT commands issued.
        column_accesses: RD/WR commands issued.
        bytes_transferred: Data moved over the bank's internal bus.
        achieved_bandwidth: bytes_transferred / seconds.
    """

    cycles: int
    seconds: float
    row_activations: int
    column_accesses: int
    bytes_transferred: int
    achieved_bandwidth: float


class DRAMEngine:
    """Runs request traces on single-bank controllers and reports stats."""

    def __init__(self, timings: Optional[DRAMTimings] = None) -> None:
        self.timings = timings if timings is not None else HBM3_TIMINGS

    def run(self, trace: Iterable[Request]) -> EngineStats:
        """Execute ``trace`` on a fresh bank; return aggregate statistics."""
        controller = BankController(timings=self.timings)
        finish = controller.serve_all(trace)
        if finish <= 0:
            raise ConfigurationError("trace produced no cycles; was it empty?")
        bank = controller.bank
        moved = bank.column_accesses * self.timings.burst_bytes
        seconds = finish * self.timings.cycle_s
        return EngineStats(
            cycles=finish,
            seconds=seconds,
            row_activations=bank.row_activations,
            column_accesses=bank.column_accesses,
            bytes_transferred=moved,
            achieved_bandwidth=moved / seconds if seconds > 0 else 0.0,
        )

    def streaming_bandwidth(self, total_bytes: int = 1 << 20) -> float:
        """Measured per-bank bandwidth for a sequential full-row stream.

        This is the number the analytic PIM model's ``per_bank_bandwidth``
        must match (the calibration invariant).
        """
        from repro.dram.trace import row_major_stream

        stats = self.run(row_major_stream(self.timings, total_bytes))
        return stats.achieved_bandwidth
