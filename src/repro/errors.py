"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so downstream users can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A device, model, or system configuration is invalid or inconsistent."""


class CapacityError(ReproError):
    """A workload does not fit in the memory capacity of the target system."""


class SchedulingError(ReproError):
    """The scheduler was asked to do something inconsistent with its state."""


class SimulationError(ReproError):
    """The discrete simulation reached an invalid state."""


class UnknownModelError(ConfigurationError):
    """A model name was requested that is not in the registry."""


class UnknownSystemError(ConfigurationError):
    """A system name was requested that is not in the registry."""
