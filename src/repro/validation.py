"""Cross-validation between the analytic device models and the cycle-level
DRAM substrate.

The paper evaluates on a Ramulator-2.0-based cycle simulator; our serving
results come from calibrated closed-form device models. This module ties
the two together: it executes an FC GEMV slice on the cycle-level channel
engine and on the analytic PIM model and reports the disagreement, which
the test suite bounds. If someone retunes one model, the validation tests
fail until the other is retuned to match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.channel import ChannelEngine
from repro.dram.timing import DRAMTimings, HBM3_TIMINGS
from repro.devices.pim import PIMConfig, PIMDeviceGroup
from repro.errors import ConfigurationError
from repro.models.kernels import KernelCost, KernelKind


@dataclass(frozen=True)
class ValidationReport:
    """Disagreement between the cycle model and the analytic model.

    Attributes:
        analytic_seconds: Analytic PIM model's kernel time.
        cycle_seconds: Cycle-level channel engine's makespan.
        relative_error: (analytic - cycle) / cycle.
    """

    analytic_seconds: float
    cycle_seconds: float

    @property
    def relative_error(self) -> float:
        if self.cycle_seconds == 0:
            raise ConfigurationError("cycle model produced zero time")
        return (self.analytic_seconds - self.cycle_seconds) / self.cycle_seconds

    def agrees_within(self, tolerance: float) -> bool:
        """Whether the two models agree within ``tolerance`` (relative)."""
        return abs(self.relative_error) <= tolerance


def validate_fc_gemv(
    config: PIMConfig,
    weight_bytes_per_bank: int,
    timings: DRAMTimings = HBM3_TIMINGS,
) -> ValidationReport:
    """Compare analytic vs cycle-level time for a memory-bound FC stream.

    The workload is a single-pass weight stream (reuse level 1 — the
    memory-bound regime where the DRAM model fully determines time; with
    reuse the analytic model is FPU-bound and the DRAM engine is not the
    limiter). One stack of ``config`` streams ``weight_bytes_per_bank``
    from each bank.

    Meaningful for one-FPU-per-bank designs (1P1B): those are the configs
    whose analytic stream bandwidth equals bank count times per-bank
    bandwidth, which is exactly what the cycle engine models. Multi-FPU
    designs assume subarray-level parallelism the single-datapath cycle
    model deliberately does not represent.

    Args:
        config: PIM stack design point.
        weight_bytes_per_bank: Unique weight bytes per bank.
        timings: DRAM timing parameters for the cycle model.

    Returns:
        The paired timing report.
    """
    if weight_bytes_per_bank <= 0:
        raise ConfigurationError("weight_bytes_per_bank must be positive")
    banks = config.banks_per_stack
    total_bytes = weight_bytes_per_bank * banks

    # Cycle model: every bank streams its slice once, in parallel.
    channel = ChannelEngine(timings)
    cycle = channel.run_balanced_gemv(
        num_banks=banks, weight_bytes=total_bytes, reuse_level=1
    )

    # Analytic model: one stack executing the equivalent kernel cost. A
    # 1P1B-style config is memory-bound at reuse 1 (AI ~1).
    group = PIMDeviceGroup(config, num_stacks=1)
    cost = KernelCost(
        kind=KernelKind.QKV,
        flops=float(total_bytes),  # 1 FLOP per weight byte (FP16 GEMV)
        weight_bytes=float(total_bytes),
        activation_bytes=0.0,
        tokens=1,
    )
    analytic = group.execute(cost).seconds - config.command_overhead_s

    return ValidationReport(
        analytic_seconds=analytic,
        cycle_seconds=cycle.makespan_seconds,
    )
