"""One serving replica: a system + model behind a continuous batch.

A replica owns a complete :class:`~repro.systems.base.ServingSystem`, an
admission queue, and the decoding state machine of the serving engine,
re-expressed as event-handler methods so a cluster simulator (or the
single-node :meth:`ServingEngine.run_trace`) can interleave many replicas
on one simulated clock:

* :meth:`enqueue` — a routed request joins the replica's waiting queue.
* :meth:`poke` — an idle replica admits waiting requests (charging
  prefill and queueing time) and schedules its next ``STEP_DONE``.
* :meth:`on_step_done` — one decoding iteration completes: accepted
  tokens are sampled, finished requests record their arrival-to-``<eos>``
  latency, the runtime monitor observes the output vector, freed slots
  are refilled, and the next iteration is scheduled.

Iteration pricing goes through the shared
:class:`~repro.serving.engine.StepPricer`, so replicas honor the same
context-accounting modes and step-cost cache as the blocking engine.

The blocking loop in ``ServingEngine.run_with_batcher`` is deliberately
*not* folded into this state machine: it must stay bit-identical to the
seed implementation for paper-figure reproduction and is tuned as a hot
loop, while this class pays per-event overhead for clock interleaving.
``tests/test_cluster.py::TestRunTrace::test_matches_static_run_when_all_arrive_at_once``
pins the two paths to identical results on their common ground — change
either loop's semantics and that test is the tripwire.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.cluster.prefixcache import PrefixCache
from repro.core.scheduler import EOS_TOKEN
from repro.errors import ConfigurationError, SimulationError
from repro.models.config import ModelConfig
from repro.models.moe import MoEModelConfig, expected_active_experts
from repro.models.workload import workload_name
from repro.serving.engine import MAX_ITERATIONS, ServingEngine, StepPricer
from repro.serving.metrics import IterationRecord, RunSummary
from repro.serving.request import Request, RequestPhase, RequestState
from repro.serving.speculative import SpeculationConfig, SpeculativeSampler
from repro.serving.stepcache import StepCostCache
from repro.serving.tlp_policy import FixedTLP, TLPPolicy, TLPTrace
from repro.systems.base import IterationResult, ServingSystem

#: Pool roles a replica can serve in a disaggregated fleet. ``colocated``
#: replicas own a request end to end; ``prefill`` replicas finish at the
#: first output token and hand the request (with its KV cache) to a
#: ``decode`` replica, which admits it mid-life with pre-filled context.
REPLICA_ROLES = ("colocated", "prefill", "decode")


class Replica:
    """Event-driven serving state machine for one system replica.

    Args:
        replica_id: Index within the cluster (also offsets the sampler
            seed so replicas draw independent acceptance streams).
        system: The platform this replica serves on.
        model: The model being served.
        max_batch_size: Continuous-batching slot count.
        speculation: Speculative-decoding configuration.
        tlp_policy: Optional dynamic speculation-length policy.
        seed: Base RNG seed (offset by ``replica_id``).
        check_capacity: Validate weight/KV capacity at each admission.
        context_mode: Context accounting mode (see ``ServingEngine``).
        context_bucket: Context quantization bucket.
        step_cache: Optional shared step-cost cache.
        moe: Optional sparse-expert configuration (must wrap ``model``).
            An MoE replica prices its FFN as the routed expert bank,
            checks capacity against all experts' weights, and reports
            expert-traffic statistics.
        detail: Metric retention (see
            :attr:`~repro.serving.metrics.RunSummary.detail`): ``"full"``
            keeps per-iteration records, ``"aggregate"`` streams them
            into running totals so million-request traces stay flat in
            memory.
        load_accounting: ``"incremental"`` (default) answers the router/
            admission load views from O(1) counters maintained across
            ``enqueue``/``_admit``/``advance``; ``"scan"`` recomputes the
            O(batch + queue) sums on every probe — the pre-optimization
            reference the equivalence suite and cluster benchmark compare
            against. Both modes produce bit-identical values.
        role: Pool role (:data:`REPLICA_ROLES`). ``"colocated"`` is the
            full request lifecycle; ``"prefill"`` batches prompt passes
            only, emits each surviving request into :attr:`outbound` at
            first token, and never decodes; ``"decode"`` admits
            transferred requests (context already prefilled — no prompt
            pass is charged) and runs the decoding state machine.
        prefix_cache: Optional session prefix/KV cache. When present, a
            session turn admitted here reuses its resident prefix — only
            the fresh suffix is charged as prefill — and the turn's
            final context is made resident for the session's next turn.
            Decode-role replicas never run a prompt pass, so they take
            no cache.
    """

    def __init__(
        self,
        replica_id: int,
        system: ServingSystem,
        model: ModelConfig,
        max_batch_size: int,
        speculation: SpeculationConfig = SpeculationConfig(),
        tlp_policy: Optional[TLPPolicy] = None,
        seed: int = 0,
        check_capacity: bool = True,
        context_mode: str = "per-request",
        context_bucket: int = 1,
        step_cache: Optional[StepCostCache] = None,
        moe: Optional[MoEModelConfig] = None,
        detail: str = "full",
        load_accounting: str = "incremental",
        role: str = "colocated",
        prefix_cache: Optional[PrefixCache] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if load_accounting not in ("incremental", "scan"):
            raise ConfigurationError(
                "load_accounting must be 'incremental' or 'scan', "
                f"got {load_accounting!r}"
            )
        if role not in REPLICA_ROLES:
            raise ConfigurationError(
                f"role must be one of {', '.join(REPLICA_ROLES)}, "
                f"got {role!r}"
            )
        self.role = role
        self.replica_id = replica_id
        self.system = system
        self.model = model
        self.moe = moe
        self.max_batch_size = max_batch_size
        self.speculation = speculation
        self.check_capacity = check_capacity
        self.seed = seed
        self.pricer = StepPricer(
            system=system,
            model=model,
            context_mode=context_mode,
            context_bucket=context_bucket,
            step_cache=step_cache,
            moe=moe,
        )
        self.sampler = SpeculativeSampler(speculation, seed=seed + replica_id)
        self.policy: TLPPolicy = (
            tlp_policy if tlp_policy is not None else FixedTLP(speculation.tlp)
        )
        self.tlp_trace = TLPTrace()
        self._workload_name = workload_name(model, moe)
        self.summary = RunSummary(
            system=system.name, model=self._workload_name, detail=detail
        )
        self.load_accounting = load_accounting
        if detail == "aggregate":
            # Aggregate detail already drops per-iteration records; drop
            # the scheduler's per-decision history for the same reason
            # (fleet-scale traces make tens of millions of decisions).
            # The reschedule counter and standing decision survive, so
            # every reported number is bit-identical.
            scheduler = getattr(system, "scheduler", None)
            if scheduler is not None:
                scheduler.keep_history = False

        self.waiting: Deque[Request] = deque()
        self.active: List[Request] = []
        self.busy = False
        self.requests_routed = 0
        self.requests_served = 0
        # Prefill-pool handoff: requests that survived their prompt pass
        # and await a KV transfer. The cluster loop drains this after
        # every event on a prefill replica and schedules the transfers.
        self.outbound: List[Request] = []
        self.requests_transferred = 0
        self.prefix_cache = prefix_cache
        # Session handoff: finished requests whose session has a next
        # turn. The cluster loop drains this after every event and
        # schedules the follow-up arrival at finish + think time.
        self.followups: List[Request] = []
        self._current_tlp = speculation.tlp
        self._iteration = 0
        self._accepted_fraction = 1.0
        self._pending: Optional[Tuple[IterationResult, int]] = None
        # Speculative-acceptance accounting (drafted vs accepted drafts).
        self._drafted_tokens = 0
        self._accepted_draft_tokens = 0
        # Expert-traffic accounting (MoE replicas only).
        self.expert_token_visits = 0
        self._active_expert_sum = 0.0
        # Incremental load counters (exact integers, so the O(1) load
        # views below are bit-identical to rescanning the queues).
        self._remaining_tokens = 0
        self._active_context_sum = 0
        self._waiting_context_sum = 0
        # Admission-probe constants: pure functions of the speculation
        # config, hoisted out of the per-arrival completion projection.
        self.draft_overhead_per_iteration_s = speculation.draft_overhead_s()
        self.expected_tokens_per_iteration = max(
            1.0, speculation.expected_tokens_per_iteration()
        )

    @property
    def workload_name(self) -> str:
        """Model name as served (see
        :func:`~repro.models.workload.workload_name`)."""
        return self._workload_name

    @property
    def acceptance_rate(self) -> float:
        """Observed fraction of drafted tokens accepted (1.0 before any
        speculation has run — matching the engine's prior)."""
        if self._drafted_tokens == 0:
            return 1.0
        return self._accepted_draft_tokens / self._drafted_tokens

    @property
    def mean_active_experts(self) -> float:
        """Mean distinct experts activated per iteration (0 when dense)."""
        if self.moe is None or self._iteration == 0:
            return 0.0
        return self._active_expert_sum / self._iteration

    # -- load view (used by routers) ------------------------------------

    def outstanding(self) -> int:
        """Requests routed here and not yet finished (queued + active)."""
        return len(self.waiting) + len(self.active)

    @property
    def current_tlp(self) -> int:
        """Speculation length the replica is currently decoding at."""
        return self._current_tlp

    def outstanding_remaining_tokens(self) -> int:
        """Output tokens still owed to every outstanding request.

        Active requests count what decoding hasn't produced yet; queued
        requests their full generation length. Admission control divides
        this by per-iteration throughput to project how long the
        replica's backlog takes to drain ahead of a new arrival.

        O(1) from the incremental counters by default; ``"scan"``
        accounting recomputes the sum (bit-identical — the counters are
        exact integer arithmetic over the same requests).
        """
        if self.load_accounting == "incremental":
            return self._remaining_tokens
        remaining = sum(r.output_len - r.generated for r in self.active)
        remaining += sum(r.output_len - r.generated for r in self.waiting)
        return remaining

    def outstanding_context_lens(self) -> List[int]:
        """KV context of every outstanding request (decoded + queued).

        Every request counts its current KV context (prompt plus tokens
        generated so far — queued requests at a decode replica arrive
        mid-life). Routers use this to project the mean context of the
        post-admission batch when pricing admission cost. Always a scan
        — probes that only need the post-admission batch shape should
        use :meth:`projected_admission_load` instead.
        """
        contexts = [r.input_len + r.generated for r in self.active]
        contexts.extend(r.input_len + r.generated for r in self.waiting)
        return contexts

    def projected_admission_load(self, input_len: int) -> Tuple[int, int]:
        """(RLP, mean context) of the batch if a request joined now.

        The O(1) core of the routers' admission-cost probe: the
        hypothetical post-admission batch is the active requests, then
        FIFO-queued ones, then the candidate (of prompt length
        ``input_len``), truncated to the replica's batch slots; the mean
        context is ``max(1, round(sum / rlp))`` over exactly that batch —
        bit-identical to scanning :meth:`outstanding_context_lens`,
        because the integer context sums are maintained incrementally.
        The truncated batch always keeps every active request (admission
        never evicts), so only a waiting-queue prefix ever needs walking,
        and only in the rare same-timestamp race where arrivals queue
        behind an admission that has not fired yet.
        """
        active_count = len(self.active)
        waiting_count = len(self.waiting)
        rlp = min(active_count + waiting_count + 1, self.max_batch_size)
        slots = rlp - active_count  # waiting prefix + maybe the candidate
        if self.load_accounting != "incremental":
            contexts = self.outstanding_context_lens()
            contexts.append(input_len)
            contexts = contexts[:rlp]
            return rlp, max(1, round(sum(contexts) / len(contexts)))
        if slots <= 0:
            total = self._active_context_sum
        elif slots > waiting_count:
            total = self._active_context_sum + self._waiting_context_sum + input_len
        elif slots == waiting_count:
            total = self._active_context_sum + self._waiting_context_sum
        else:
            total = self._active_context_sum
            for request in self.waiting:
                if slots == 0:
                    break
                total += request.input_len + request.generated
                slots -= 1
        return rlp, max(1, round(total / rlp))

    @property
    def idle(self) -> bool:
        """True when no prefill/decode work is in flight."""
        return not self.busy

    def reschedule_count(self) -> int:
        """FC migrations the replica's scheduler performed so far."""
        scheduler = getattr(self.system, "scheduler", None)
        if scheduler is None:
            return 0
        return scheduler.reschedule_count

    # -- event handlers --------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Accept a routed request into the waiting queue.

        Requests transferred into a decode pool arrive mid-life
        (``generated > 0``), so the incremental counters track what is
        genuinely outstanding — remaining output and current KV context
        — which reduces to the full output/prompt lengths for the fresh
        arrivals colocated and prefill replicas see.
        """
        request.state = RequestState.QUEUED
        self.waiting.append(request)
        self.requests_routed += 1
        self._remaining_tokens += request.output_len - request.generated
        self._waiting_context_sum += request.input_len + request.generated

    def poke(self, now: float) -> Optional[float]:
        """Start serving if idle; returns the next ``STEP_DONE`` time.

        A prefill-role replica's "step" is the prompt pass itself: it
        admits a batch, charges the prefill, and its ``STEP_DONE`` fires
        when the whole batch reaches first token — no decoding iteration
        is ever scheduled.
        """
        if self.busy:
            return None
        duration = self._admit(now)
        if not self.active:
            return None
        if self.role != "prefill":
            duration += self._schedule_step()
        self.busy = True
        return now + duration

    def on_step_done(self, now: float) -> Optional[float]:
        """Complete the in-flight iteration; returns the next one's time."""
        if self.role == "prefill":
            return self._prefill_done(now)
        if self._pending is None:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no step in flight"
            )
        result, tlp = self._pending
        self._pending = None

        accepted_total = 0
        finished_context = 0
        outputs: List[int] = []
        still_active: List[Request] = []
        serial = tlp == 1  # no draft model => exactly one token accepted
        for request in self.active:
            accepted = 1 if serial else self.sampler.accepted_tokens(tlp)
            credited = request.advance(accepted, self._iteration)
            accepted_total += credited
            if request.is_finished:
                outputs.append(EOS_TOKEN)
                request.finish_s = now
                self.requests_served += 1
                finished_context += request.input_len + request.output_len
                self.summary.record_request_latency(
                    max(0.0, now - request.arrival_s)
                )
                if request.followup is not None:
                    self.followups.append(request)
            else:
                outputs.append(0)
                still_active.append(request)
        self._remaining_tokens -= accepted_total
        self._active_context_sum += accepted_total - finished_context
        rlp = len(self.active)
        self._accepted_fraction = ServingEngine._accepted_fraction(
            accepted_total, rlp, tlp
        )
        if tlp > 1:
            self._drafted_tokens += rlp * (tlp - 1)
            self._accepted_draft_tokens += max(0, accepted_total - rlp)
        if self.moe is not None:
            tokens = rlp * tlp
            self.expert_token_visits += tokens * self.moe.experts_per_token
            self._active_expert_sum += expected_active_experts(
                self.moe.num_experts, self.moe.experts_per_token, tokens
            )
        self.system.observe_outputs(outputs)
        if self.summary.detail == "full":
            self.summary.add_iteration(
                IterationRecord(
                    iteration=self._iteration,
                    result=result,
                    tokens_accepted=accepted_total,
                    rlp_before=len(self.active),
                    rlp_after=len(still_active),
                )
            )
        else:
            self.summary.fold_iteration(result, accepted_total)
        self._iteration += 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("decoding did not converge (runaway loop)")
        self.active = still_active

        duration = self._admit(now)
        if not self.active:
            self.busy = False
            return None
        duration += self._schedule_step()
        return now + duration

    def _prefill_done(self, now: float) -> Optional[float]:
        """A prefill-role batch reached first token; hand off or finish.

        Every request in the batch emits exactly one token. Single-token
        requests finish here; the rest turn ``TRANSFERRING`` and join
        :attr:`outbound` for the cluster loop to ship to the decode
        pool. Either way the whole batch leaves this replica, so the
        incremental counters shed each request's remaining output and
        full KV context.
        """
        if not self.active:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no prefill "
                "batch in flight"
            )
        accepted_total = 0
        departed_remaining = 0
        departed_context = 0
        for request in self.active:
            request.first_token_s = now
            accepted_total += request.advance(1, self._iteration)
            if request.is_finished:
                request.finish_s = now
                self.requests_served += 1
                departed_context += request.input_len + request.output_len
                self.summary.record_request_latency(
                    max(0.0, now - request.arrival_s)
                )
                if request.followup is not None:
                    self.followups.append(request)
            else:
                request.phase = RequestPhase.TRANSFERRING
                self.outbound.append(request)
                self.requests_transferred += 1
                departed_remaining += request.output_len - request.generated
                departed_context += request.input_len + request.generated
        self._remaining_tokens -= accepted_total + departed_remaining
        self._active_context_sum += accepted_total - departed_context
        self.summary.tokens_generated += accepted_total
        self._iteration += 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("prefill backlog did not converge")
        self.active = []
        self._clear_slots()
        duration = self._admit(now)
        if not self.active:
            self.busy = False
            return None
        return now + duration

    def _clear_slots(self) -> None:
        """Hook for slot-mirroring subclasses: a prefill-role batch
        departs wholesale, so any per-slot state resets with it."""

    def finalize(self, makespan_s: float) -> RunSummary:
        """Close out the run summary once the cluster trace has drained."""
        if (
            self.waiting
            or self.active
            or self.busy
            or self.outbound
            or self.followups
        ):
            raise SimulationError(
                f"replica {self.replica_id} finalized with work outstanding"
            )
        self.summary.reschedules = self.reschedule_count()
        self.summary.makespan_seconds = makespan_s
        return self.summary

    # -- internals -------------------------------------------------------

    def _admit(self, now: float) -> float:
        """Fill open batch slots; returns the prefill seconds charged.

        Role variants: a decode-role replica admits transferred
        requests whose context is already prefilled — it charges no
        prompt pass and counts queueing from the KV transfer's
        completion, not the cluster arrival. A prefill-role replica
        charges the prompt pass but never forms a decoding batch (its
        capacity bound is the first-token context, and the scheduler is
        never engaged).
        """
        fresh: List[Request] = []
        while self.waiting and (
            len(self.active) + len(fresh) < self.max_batch_size
        ):
            request = self.waiting.popleft()
            request.state = RequestState.PREFILLING
            self._waiting_context_sum -= request.input_len + request.generated
            self._active_context_sum += request.input_len + request.generated
            fresh.append(request)
        if not fresh:
            return 0.0
        if self.check_capacity:
            cohort = self.active + fresh
            if self.role == "prefill":
                max_seq = max(r.input_len + 1 for r in cohort)
            else:
                max_seq = max(r.input_len + r.output_len for r in cohort)
            self.system.check_capacity(
                self.model, len(cohort), max_seq, moe=self.moe
            )
        if self.role == "decode":
            self.summary.queueing_seconds += sum(
                max(0.0, now - r.transfer_done_s) for r in fresh
            )
            for request in fresh:
                request.state = RequestState.DECODING
            self.active.extend(fresh)
            self.system.begin_batch(len(self.active), self._current_tlp)
            return 0.0
        self.summary.queueing_seconds += sum(
            max(0.0, now - r.arrival_s) for r in fresh
        )
        if self.prefix_cache is not None:
            # The serving-path cache read: a resident prefix discounts
            # the prompt pass to the fresh suffix (KV capacity and
            # transfer still cover the full context — the cache spares
            # prompt *computation*, not memory). The turn's final
            # context becomes resident for the session's next turn;
            # turns are serial, so it is valid by the time that turn
            # can arrive. Non-session requests pass through untouched
            # (prefill_len == input_len), keeping independent traces
            # byte-identical.
            for request in fresh:
                if request.session_id is None:
                    continue
                if request.prefix_len > 0:
                    request.cached_prefix_len = self.prefix_cache.lookup(
                        request.session_id, request.prefix_len
                    )
                self.prefix_cache.insert(
                    request.session_id,
                    request.input_len + request.output_len,
                )
        mean_input = max(
            1, round(sum(r.prefill_len for r in fresh) / len(fresh))
        )
        result = self.system.execute_prefill(self.model, len(fresh), mean_input)
        self.summary.prefill_seconds += result.seconds
        self.summary.prefill_energy += result.energy_joules
        if self.role == "prefill":
            # The batch stays PREFILLING until `_prefill_done` emits the
            # first tokens; no decoding batch begins on this replica.
            self.active.extend(fresh)
            return result.seconds
        for request in fresh:
            request.state = RequestState.DECODING
        self.active.extend(fresh)
        self.system.begin_batch(len(self.active), self._current_tlp)
        return result.seconds

    def _schedule_step(self) -> float:
        """Price the next iteration; returns its duration (draft + step)."""
        rlp = len(self.active)
        tlp = self.policy.next_tlp(self._iteration, rlp, self._accepted_fraction)
        if tlp != self._current_tlp:
            self.system.update_tlp(tlp)
            self._current_tlp = tlp
        self.tlp_trace.record(tlp)
        if (
            self.load_accounting == "incremental"
            and self.pricer.context_mode == "mean"
        ):
            # The active-context counter is exactly the sum price() would
            # recompute; skip the O(batch) pass per iteration.
            result = self.pricer.price_mean_total(
                rlp, tlp, self._active_context_sum
            )
        else:
            result = self.pricer.price(self.active, tlp)
        draft = self.speculation.draft_overhead_s(tlp)
        self.summary.draft_seconds += draft
        self._pending = (result, tlp)
        return draft + result.seconds

    # -- standalone single-replica loop ----------------------------------

    def serve_trace(self, requests: Sequence[Request]) -> RunSummary:
        """Serve an arrival-stamped trace on this replica alone.

        The single-replica degenerate case of the cluster event loop;
        :meth:`ServingEngine.run_trace` delegates here. Runs the one
        shared event loop (``ClusterSimulator.run``) rather than keeping a
        private copy of the dispatch logic.
        """
        # Imported here: repro.cluster.cluster imports this module.
        from repro.cluster.cluster import ClusterSimulator
        from repro.cluster.router import RoundRobinRouter

        ClusterSimulator([self], RoundRobinRouter()).run(requests)
        return self.summary
