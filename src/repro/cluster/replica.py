"""One serving replica: a system + model behind a continuous batch.

A replica owns a complete :class:`~repro.systems.base.ServingSystem`, an
admission queue, and the decoding state machine of the serving engine,
re-expressed as event-handler methods so a cluster simulator (or the
single-node :meth:`ServingEngine.run_trace`) can interleave many replicas
on one simulated clock:

* :meth:`enqueue` — a routed request joins the replica's waiting queue.
* :meth:`poke` — an idle replica admits waiting requests (charging
  prefill and queueing time) and schedules its next ``STEP_DONE``.
* :meth:`on_step_done` — one decoding iteration completes: accepted
  tokens are sampled, finished requests record their arrival-to-``<eos>``
  latency, the runtime monitor observes the output vector, freed slots
  are refilled, and the next iteration is scheduled.

Iteration pricing goes through the shared
:class:`~repro.serving.engine.StepPricer`, so replicas honor the same
context-accounting modes and step-cost cache as the blocking engine.

The blocking loop in ``ServingEngine.run_with_batcher`` is deliberately
*not* folded into this state machine: it must stay bit-identical to the
seed implementation for paper-figure reproduction and is tuned as a hot
loop, while this class pays per-event overhead for clock interleaving.
``tests/test_cluster.py::TestRunTrace::test_matches_static_run_when_all_arrive_at_once``
pins the two paths to identical results on their common ground — change
either loop's semantics and that test is the tripwire.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.core.scheduler import EOS_TOKEN
from repro.errors import ConfigurationError, SimulationError
from repro.models.config import ModelConfig
from repro.models.moe import MoEModelConfig, expected_active_experts
from repro.models.workload import workload_name
from repro.serving.engine import MAX_ITERATIONS, ServingEngine, StepPricer
from repro.serving.metrics import IterationRecord, RunSummary
from repro.serving.request import Request, RequestState
from repro.serving.speculative import SpeculationConfig, SpeculativeSampler
from repro.serving.stepcache import StepCostCache
from repro.serving.tlp_policy import FixedTLP, TLPPolicy, TLPTrace
from repro.systems.base import IterationResult, ServingSystem


class Replica:
    """Event-driven serving state machine for one system replica.

    Args:
        replica_id: Index within the cluster (also offsets the sampler
            seed so replicas draw independent acceptance streams).
        system: The platform this replica serves on.
        model: The model being served.
        max_batch_size: Continuous-batching slot count.
        speculation: Speculative-decoding configuration.
        tlp_policy: Optional dynamic speculation-length policy.
        seed: Base RNG seed (offset by ``replica_id``).
        check_capacity: Validate weight/KV capacity at each admission.
        context_mode: Context accounting mode (see ``ServingEngine``).
        context_bucket: Context quantization bucket.
        step_cache: Optional shared step-cost cache.
        moe: Optional sparse-expert configuration (must wrap ``model``).
            An MoE replica prices its FFN as the routed expert bank,
            checks capacity against all experts' weights, and reports
            expert-traffic statistics.
    """

    def __init__(
        self,
        replica_id: int,
        system: ServingSystem,
        model: ModelConfig,
        max_batch_size: int,
        speculation: SpeculationConfig = SpeculationConfig(),
        tlp_policy: Optional[TLPPolicy] = None,
        seed: int = 0,
        check_capacity: bool = True,
        context_mode: str = "per-request",
        context_bucket: int = 1,
        step_cache: Optional[StepCostCache] = None,
        moe: Optional[MoEModelConfig] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        self.replica_id = replica_id
        self.system = system
        self.model = model
        self.moe = moe
        self.max_batch_size = max_batch_size
        self.speculation = speculation
        self.check_capacity = check_capacity
        self.seed = seed
        self.pricer = StepPricer(
            system=system,
            model=model,
            context_mode=context_mode,
            context_bucket=context_bucket,
            step_cache=step_cache,
            moe=moe,
        )
        self.sampler = SpeculativeSampler(speculation, seed=seed + replica_id)
        self.policy: TLPPolicy = (
            tlp_policy if tlp_policy is not None else FixedTLP(speculation.tlp)
        )
        self.tlp_trace = TLPTrace()
        self.summary = RunSummary(system=system.name, model=self.workload_name)

        self.waiting: Deque[Request] = deque()
        self.active: List[Request] = []
        self.busy = False
        self.requests_routed = 0
        self.requests_served = 0
        self._current_tlp = speculation.tlp
        self._iteration = 0
        self._accepted_fraction = 1.0
        self._pending: Optional[Tuple[IterationResult, int]] = None
        # Speculative-acceptance accounting (drafted vs accepted drafts).
        self._drafted_tokens = 0
        self._accepted_draft_tokens = 0
        # Expert-traffic accounting (MoE replicas only).
        self.expert_token_visits = 0
        self._active_expert_sum = 0.0

    @property
    def workload_name(self) -> str:
        """Model name as served (see
        :func:`~repro.models.workload.workload_name`)."""
        return workload_name(self.model, self.moe)

    @property
    def acceptance_rate(self) -> float:
        """Observed fraction of drafted tokens accepted (1.0 before any
        speculation has run — matching the engine's prior)."""
        if self._drafted_tokens == 0:
            return 1.0
        return self._accepted_draft_tokens / self._drafted_tokens

    @property
    def mean_active_experts(self) -> float:
        """Mean distinct experts activated per iteration (0 when dense)."""
        if self.moe is None or self._iteration == 0:
            return 0.0
        return self._active_expert_sum / self._iteration

    # -- load view (used by routers) ------------------------------------

    def outstanding(self) -> int:
        """Requests routed here and not yet finished (queued + active)."""
        return len(self.waiting) + len(self.active)

    @property
    def current_tlp(self) -> int:
        """Speculation length the replica is currently decoding at."""
        return self._current_tlp

    def outstanding_remaining_tokens(self) -> int:
        """Output tokens still owed to every outstanding request.

        Active requests count what decoding hasn't produced yet; queued
        requests their full generation length. Admission control divides
        this by per-iteration throughput to project how long the
        replica's backlog takes to drain ahead of a new arrival.
        """
        remaining = sum(r.output_len - r.generated for r in self.active)
        remaining += sum(r.output_len for r in self.waiting)
        return remaining

    def outstanding_context_lens(self) -> List[int]:
        """KV context of every outstanding request (decoded + queued).

        Active requests count their generated tokens; queued requests
        count their prompt only. Routers use this to project the mean
        context of the post-admission batch when pricing admission cost.
        """
        contexts = [r.input_len + r.generated for r in self.active]
        contexts.extend(r.input_len for r in self.waiting)
        return contexts

    @property
    def idle(self) -> bool:
        """True when no prefill/decode work is in flight."""
        return not self.busy

    def reschedule_count(self) -> int:
        """FC migrations the replica's scheduler performed so far."""
        scheduler = getattr(self.system, "scheduler", None)
        if scheduler is None:
            return 0
        return scheduler.reschedule_count

    # -- event handlers --------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Accept a routed request into the waiting queue."""
        request.state = RequestState.QUEUED
        self.waiting.append(request)
        self.requests_routed += 1

    def poke(self, now: float) -> Optional[float]:
        """Start serving if idle; returns the next ``STEP_DONE`` time."""
        if self.busy:
            return None
        duration = self._admit(now)
        if not self.active:
            return None
        duration += self._schedule_step()
        self.busy = True
        return now + duration

    def on_step_done(self, now: float) -> Optional[float]:
        """Complete the in-flight iteration; returns the next one's time."""
        if self._pending is None:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no step in flight"
            )
        result, tlp = self._pending
        self._pending = None

        accepted_total = 0
        outputs: List[int] = []
        still_active: List[Request] = []
        serial = tlp == 1  # no draft model => exactly one token accepted
        for request in self.active:
            accepted = 1 if serial else self.sampler.accepted_tokens(tlp)
            credited = request.advance(accepted, self._iteration)
            accepted_total += credited
            if request.is_finished:
                outputs.append(EOS_TOKEN)
                request.finish_s = now
                self.requests_served += 1
                self.summary.record_request_latency(
                    max(0.0, now - request.arrival_s)
                )
            else:
                outputs.append(0)
                still_active.append(request)
        rlp = len(self.active)
        self._accepted_fraction = ServingEngine._accepted_fraction(
            accepted_total, rlp, tlp
        )
        if tlp > 1:
            self._drafted_tokens += rlp * (tlp - 1)
            self._accepted_draft_tokens += max(0, accepted_total - rlp)
        if self.moe is not None:
            tokens = rlp * tlp
            self.expert_token_visits += tokens * self.moe.experts_per_token
            self._active_expert_sum += expected_active_experts(
                self.moe.num_experts, self.moe.experts_per_token, tokens
            )
        self.system.observe_outputs(outputs)
        self.summary.add_iteration(
            IterationRecord(
                iteration=self._iteration,
                result=result,
                tokens_accepted=accepted_total,
                rlp_before=len(self.active),
                rlp_after=len(still_active),
            )
        )
        self._iteration += 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("decoding did not converge (runaway loop)")
        self.active = still_active

        duration = self._admit(now)
        if not self.active:
            self.busy = False
            return None
        duration += self._schedule_step()
        return now + duration

    def finalize(self, makespan_s: float) -> RunSummary:
        """Close out the run summary once the cluster trace has drained."""
        if self.waiting or self.active or self.busy:
            raise SimulationError(
                f"replica {self.replica_id} finalized with work outstanding"
            )
        self.summary.reschedules = self.reschedule_count()
        self.summary.makespan_seconds = makespan_s
        return self.summary

    # -- internals -------------------------------------------------------

    def _admit(self, now: float) -> float:
        """Fill open batch slots; returns the prefill seconds charged."""
        fresh: List[Request] = []
        while self.waiting and (
            len(self.active) + len(fresh) < self.max_batch_size
        ):
            request = self.waiting.popleft()
            request.state = RequestState.PREFILLING
            fresh.append(request)
        if not fresh:
            return 0.0
        if self.check_capacity:
            cohort = self.active + fresh
            max_seq = max(r.input_len + r.output_len for r in cohort)
            self.system.check_capacity(
                self.model, len(cohort), max_seq, moe=self.moe
            )
        self.summary.queueing_seconds += sum(
            max(0.0, now - r.arrival_s) for r in fresh
        )
        mean_input = max(
            1, round(sum(r.input_len for r in fresh) / len(fresh))
        )
        result = self.system.execute_prefill(self.model, len(fresh), mean_input)
        self.summary.prefill_seconds += result.seconds
        self.summary.prefill_energy += result.energy_joules
        for request in fresh:
            request.state = RequestState.DECODING
        self.active.extend(fresh)
        self.system.begin_batch(len(self.active), self._current_tlp)
        return result.seconds

    def _schedule_step(self) -> float:
        """Price the next iteration; returns its duration (draft + step)."""
        rlp = len(self.active)
        tlp = self.policy.next_tlp(self._iteration, rlp, self._accepted_fraction)
        if tlp != self._current_tlp:
            self.system.update_tlp(tlp)
            self._current_tlp = tlp
        self.tlp_trace.record(tlp)
        result = self.pricer.price(self.active, tlp)
        draft = self.speculation.draft_overhead_s(tlp)
        self.summary.draft_seconds += draft
        self._pending = (result, tlp)
        return draft + result.seconds

    # -- standalone single-replica loop ----------------------------------

    def serve_trace(self, requests: Sequence[Request]) -> RunSummary:
        """Serve an arrival-stamped trace on this replica alone.

        The single-replica degenerate case of the cluster event loop;
        :meth:`ServingEngine.run_trace` delegates here. Runs the one
        shared event loop (``ClusterSimulator.run``) rather than keeping a
        private copy of the dispatch logic.
        """
        # Imported here: repro.cluster.cluster imports this module.
        from repro.cluster.cluster import ClusterSimulator
        from repro.cluster.router import RoundRobinRouter

        ClusterSimulator([self], RoundRobinRouter()).run(requests)
        return self.summary
