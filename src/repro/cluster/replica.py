"""One serving replica: a system + model behind a continuous batch.

A replica owns a complete :class:`~repro.systems.base.ServingSystem`, an
admission queue, and the decoding state machine of the serving engine,
re-expressed as event-handler methods so a cluster simulator (or the
single-node :meth:`ServingEngine.run_trace`) can interleave many replicas
on one simulated clock:

* :meth:`enqueue` — a routed request joins the replica's waiting queue.
* :meth:`poke` — an idle replica admits waiting requests (charging
  prefill and queueing time) and schedules its next ``STEP_DONE``.
* :meth:`on_step_done` — one decoding iteration completes: accepted
  tokens are sampled, finished requests record their arrival-to-``<eos>``
  latency, the runtime monitor observes the output vector, freed slots
  are refilled, and the next iteration is scheduled.

Iteration pricing goes through the shared
:class:`~repro.serving.engine.StepPricer`, so replicas honor the same
context-accounting modes and step-cost cache as the blocking engine.

The blocking loop in ``ServingEngine.run_with_batcher`` is deliberately
*not* folded into this state machine: it must stay bit-identical to the
seed implementation for paper-figure reproduction and is tuned as a hot
loop, while this class pays per-event overhead for clock interleaving.
``tests/test_cluster.py::TestRunTrace::test_matches_static_run_when_all_arrive_at_once``
pins the two paths to identical results on their common ground — change
either loop's semantics and that test is the tripwire.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.prefixcache import PrefixCache
from repro.core.scheduler import EOS_TOKEN
from repro.errors import ConfigurationError, SimulationError
from repro.models.config import ModelConfig
from repro.models.moe import MoEModelConfig, expected_active_experts
from repro.models.workload import workload_name
from repro.serving.engine import MAX_ITERATIONS, ServingEngine, StepPricer
from repro.serving.metrics import IterationRecord, RunSummary
from repro.serving.request import Request, RequestPhase, RequestState
from repro.serving.speculative import SpeculationConfig, SpeculativeSampler
from repro.serving.stepcache import StepCostCache
from repro.serving.tlp_policy import FixedTLP, TLPPolicy, TLPTrace
from repro.systems.base import IterationResult, ServingSystem

#: Pool roles a replica can serve in a disaggregated fleet. ``colocated``
#: replicas own a request end to end; ``prefill`` replicas finish at the
#: first output token and hand the request (with its KV cache) to a
#: ``decode`` replica, which admits it mid-life with pre-filled context.
REPLICA_ROLES = ("colocated", "prefill", "decode")

#: Iterations a macro-step must cover before the closed-form setup pays
#: for itself; shorter frozen runs fall back to per-iteration stepping.
MACRO_MIN_RUN = 2

#: Upper bound on iterations folded by one macro-step. Bounds the
#: temporary pricing/time arrays; a longer frozen run simply compresses
#: as several consecutive macro-steps.
MACRO_MAX_RUN = 16384

#: Runs at or below this length use plain int/float arithmetic instead
#: of the numpy pipeline: array allocation and ufunc dispatch cost more
#: than they save until runs reach tens of iterations, and short runs
#: dominate (a slot finishes every ~mean_output/batch iterations).
MACRO_SMALL_RUN = 64


class Replica:
    """Event-driven serving state machine for one system replica.

    Args:
        replica_id: Index within the cluster (also offsets the sampler
            seed so replicas draw independent acceptance streams).
        system: The platform this replica serves on.
        model: The model being served.
        max_batch_size: Continuous-batching slot count.
        speculation: Speculative-decoding configuration.
        tlp_policy: Optional dynamic speculation-length policy.
        seed: Base RNG seed (offset by ``replica_id``).
        check_capacity: Validate weight/KV capacity at each admission.
        context_mode: Context accounting mode (see ``ServingEngine``).
        context_bucket: Context quantization bucket.
        step_cache: Optional shared step-cost cache.
        moe: Optional sparse-expert configuration (must wrap ``model``).
            An MoE replica prices its FFN as the routed expert bank,
            checks capacity against all experts' weights, and reports
            expert-traffic statistics.
        detail: Metric retention (see
            :attr:`~repro.serving.metrics.RunSummary.detail`): ``"full"``
            keeps per-iteration records, ``"aggregate"`` streams them
            into running totals so million-request traces stay flat in
            memory.
        load_accounting: ``"incremental"`` (default) answers the router/
            admission load views from O(1) counters maintained across
            ``enqueue``/``_admit``/``advance``; ``"scan"`` recomputes the
            O(batch + queue) sums on every probe — the pre-optimization
            reference the equivalence suite and cluster benchmark compare
            against. Both modes produce bit-identical values.
        role: Pool role (:data:`REPLICA_ROLES`). ``"colocated"`` is the
            full request lifecycle; ``"prefill"`` batches prompt passes
            only, emits each surviving request into :attr:`outbound` at
            first token, and never decodes; ``"decode"`` admits
            transferred requests (context already prefilled — no prompt
            pass is charged) and runs the decoding state machine.
        prefix_cache: Optional session prefix/KV cache. When present, a
            session turn admitted here reuses its resident prefix — only
            the fresh suffix is charged as prefill — and the turn's
            final context is made resident for the session's next turn.
            Decode-role replicas never run a prompt pass, so they take
            no cache.
    """

    def __init__(
        self,
        replica_id: int,
        system: ServingSystem,
        model: ModelConfig,
        max_batch_size: int,
        speculation: SpeculationConfig = SpeculationConfig(),
        tlp_policy: Optional[TLPPolicy] = None,
        seed: int = 0,
        check_capacity: bool = True,
        context_mode: str = "per-request",
        context_bucket: int = 1,
        step_cache: Optional[StepCostCache] = None,
        moe: Optional[MoEModelConfig] = None,
        detail: str = "full",
        load_accounting: str = "incremental",
        role: str = "colocated",
        prefix_cache: Optional[PrefixCache] = None,
    ) -> None:
        if max_batch_size <= 0:
            raise ConfigurationError("max_batch_size must be positive")
        if load_accounting not in ("incremental", "scan"):
            raise ConfigurationError(
                "load_accounting must be 'incremental' or 'scan', "
                f"got {load_accounting!r}"
            )
        if role not in REPLICA_ROLES:
            raise ConfigurationError(
                f"role must be one of {', '.join(REPLICA_ROLES)}, "
                f"got {role!r}"
            )
        self.role = role
        self.replica_id = replica_id
        self.system = system
        self.model = model
        self.moe = moe
        self.max_batch_size = max_batch_size
        self.speculation = speculation
        self.check_capacity = check_capacity
        self.seed = seed
        self.pricer = StepPricer(
            system=system,
            model=model,
            context_mode=context_mode,
            context_bucket=context_bucket,
            step_cache=step_cache,
            moe=moe,
        )
        self.sampler = SpeculativeSampler(speculation, seed=seed + replica_id)
        self.policy: TLPPolicy = (
            tlp_policy if tlp_policy is not None else FixedTLP(speculation.tlp)
        )
        self.tlp_trace = TLPTrace()
        self._workload_name = workload_name(model, moe)
        self.summary = RunSummary(
            system=system.name, model=self._workload_name, detail=detail
        )
        self.load_accounting = load_accounting
        if detail == "aggregate":
            # Aggregate detail already drops per-iteration records; drop
            # the scheduler's per-decision history for the same reason
            # (fleet-scale traces make tens of millions of decisions).
            # The reschedule counter and standing decision survive, so
            # every reported number is bit-identical.
            scheduler = getattr(system, "scheduler", None)
            if scheduler is not None:
                scheduler.keep_history = False

        self.waiting: Deque[Request] = deque()
        self.active: List[Request] = []
        self.busy = False
        self.requests_routed = 0
        self.requests_served = 0
        # Prefill-pool handoff: requests that survived their prompt pass
        # and await a KV transfer. The cluster loop drains this after
        # every event on a prefill replica and schedules the transfers.
        self.outbound: List[Request] = []
        self.requests_transferred = 0
        self.prefix_cache = prefix_cache
        # Session handoff: finished requests whose session has a next
        # turn. The cluster loop drains this after every event and
        # schedules the follow-up arrival at finish + think time.
        self.followups: List[Request] = []
        self._current_tlp = speculation.tlp
        self._iteration = 0
        self._accepted_fraction = 1.0
        self._pending: Optional[Tuple[IterationResult, int]] = None
        # Speculative-acceptance accounting (drafted vs accepted drafts).
        self._drafted_tokens = 0
        self._accepted_draft_tokens = 0
        # Expert-traffic accounting (MoE replicas only).
        self.expert_token_visits = 0
        self._active_expert_sum = 0.0
        # Incremental load counters (exact integers, so the O(1) load
        # views below are bit-identical to rescanning the queues).
        self._remaining_tokens = 0
        self._active_context_sum = 0
        self._waiting_context_sum = 0
        # Admission-probe constants: pure functions of the speculation
        # config, hoisted out of the per-arrival completion projection.
        self.draft_overhead_per_iteration_s = speculation.draft_overhead_s()
        self.expected_tokens_per_iteration = max(
            1.0, speculation.expected_tokens_per_iteration()
        )
        # Macro-stepping state (see :meth:`compress_run`): fallback/engage
        # counters for reporting, a static-ineligibility latch, and the
        # tokens every slot deterministically accepts per frozen iteration
        # (resolved lazily on the first attempt).
        self.step_macro: Dict[str, int] = {}
        self._macro_off = False
        self._macro_steady: Optional[int] = None
        # Pricing closures are loop-invariant per (rlp, tlp): the fc
        # target, cache scope, and memo object they capture are stable
        # for a replica's lifetime, so rebuilding them per macro-run
        # (closure construction + scope resolution) is pure overhead.
        self._macro_pricer_cache: Dict[Tuple[int, int], Any] = {}

    @property
    def workload_name(self) -> str:
        """Model name as served (see
        :func:`~repro.models.workload.workload_name`)."""
        return self._workload_name

    @property
    def acceptance_rate(self) -> float:
        """Observed fraction of drafted tokens accepted (1.0 before any
        speculation has run — matching the engine's prior)."""
        if self._drafted_tokens == 0:
            return 1.0
        return self._accepted_draft_tokens / self._drafted_tokens

    @property
    def mean_active_experts(self) -> float:
        """Mean distinct experts activated per iteration (0 when dense)."""
        if self.moe is None or self._iteration == 0:
            return 0.0
        return self._active_expert_sum / self._iteration

    # -- load view (used by routers) ------------------------------------

    def outstanding(self) -> int:
        """Requests routed here and not yet finished (queued + active)."""
        return len(self.waiting) + len(self.active)

    @property
    def current_tlp(self) -> int:
        """Speculation length the replica is currently decoding at."""
        return self._current_tlp

    def outstanding_remaining_tokens(self) -> int:
        """Output tokens still owed to every outstanding request.

        Active requests count what decoding hasn't produced yet; queued
        requests their full generation length. Admission control divides
        this by per-iteration throughput to project how long the
        replica's backlog takes to drain ahead of a new arrival.

        O(1) from the incremental counters by default; ``"scan"``
        accounting recomputes the sum (bit-identical — the counters are
        exact integer arithmetic over the same requests).
        """
        if self.load_accounting == "incremental":
            return self._remaining_tokens
        remaining = sum(r.output_len - r.generated for r in self.active)
        remaining += sum(r.output_len - r.generated for r in self.waiting)
        return remaining

    def outstanding_context_lens(self) -> List[int]:
        """KV context of every outstanding request (decoded + queued).

        Every request counts its current KV context (prompt plus tokens
        generated so far — queued requests at a decode replica arrive
        mid-life). Routers use this to project the mean context of the
        post-admission batch when pricing admission cost. Always a scan
        — probes that only need the post-admission batch shape should
        use :meth:`projected_admission_load` instead.
        """
        contexts = [r.input_len + r.generated for r in self.active]
        contexts.extend(r.input_len + r.generated for r in self.waiting)
        return contexts

    def projected_admission_load(self, input_len: int) -> Tuple[int, int]:
        """(RLP, mean context) of the batch if a request joined now.

        The O(1) core of the routers' admission-cost probe: the
        hypothetical post-admission batch is the active requests, then
        FIFO-queued ones, then the candidate (of prompt length
        ``input_len``), truncated to the replica's batch slots; the mean
        context is ``max(1, round(sum / rlp))`` over exactly that batch —
        bit-identical to scanning :meth:`outstanding_context_lens`,
        because the integer context sums are maintained incrementally.
        The truncated batch always keeps every active request (admission
        never evicts), so only a waiting-queue prefix ever needs walking,
        and only in the rare same-timestamp race where arrivals queue
        behind an admission that has not fired yet.
        """
        active_count = len(self.active)
        waiting_count = len(self.waiting)
        rlp = min(active_count + waiting_count + 1, self.max_batch_size)
        slots = rlp - active_count  # waiting prefix + maybe the candidate
        if self.load_accounting != "incremental":
            contexts = self.outstanding_context_lens()
            contexts.append(input_len)
            contexts = contexts[:rlp]
            return rlp, max(1, round(sum(contexts) / len(contexts)))
        if slots <= 0:
            total = self._active_context_sum
        elif slots > waiting_count:
            total = self._active_context_sum + self._waiting_context_sum + input_len
        elif slots == waiting_count:
            total = self._active_context_sum + self._waiting_context_sum
        else:
            total = self._active_context_sum
            for request in self.waiting:
                if slots == 0:
                    break
                total += request.input_len + request.generated
                slots -= 1
        return rlp, max(1, round(total / rlp))

    @property
    def idle(self) -> bool:
        """True when no prefill/decode work is in flight."""
        return not self.busy

    def reschedule_count(self) -> int:
        """FC migrations the replica's scheduler performed so far."""
        scheduler = getattr(self.system, "scheduler", None)
        if scheduler is None:
            return 0
        return scheduler.reschedule_count

    # -- event handlers --------------------------------------------------

    def enqueue(self, request: Request) -> None:
        """Accept a routed request into the waiting queue.

        Requests transferred into a decode pool arrive mid-life
        (``generated > 0``), so the incremental counters track what is
        genuinely outstanding — remaining output and current KV context
        — which reduces to the full output/prompt lengths for the fresh
        arrivals colocated and prefill replicas see.
        """
        request.state = RequestState.QUEUED
        self.waiting.append(request)
        self.requests_routed += 1
        self._remaining_tokens += request.output_len - request.generated
        self._waiting_context_sum += request.input_len + request.generated

    def poke(self, now: float) -> Optional[float]:
        """Start serving if idle; returns the next ``STEP_DONE`` time.

        A prefill-role replica's "step" is the prompt pass itself: it
        admits a batch, charges the prefill, and its ``STEP_DONE`` fires
        when the whole batch reaches first token — no decoding iteration
        is ever scheduled.
        """
        if self.busy:
            return None
        duration = self._admit(now)
        if not self.active:
            return None
        if self.role != "prefill":
            duration += self._schedule_step()
        self.busy = True
        return now + duration

    def on_step_done(self, now: float) -> Optional[float]:
        """Complete the in-flight iteration; returns the next one's time."""
        if self.role == "prefill":
            return self._prefill_done(now)
        if self._pending is None:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no step in flight"
            )
        result, tlp = self._pending
        self._pending = None

        accepted_total = 0
        finished_context = 0
        outputs: List[int] = []
        still_active: List[Request] = []
        serial = tlp == 1  # no draft model => exactly one token accepted
        for request in self.active:
            accepted = 1 if serial else self.sampler.accepted_tokens(tlp)
            credited = request.advance(accepted, self._iteration)
            accepted_total += credited
            if request.is_finished:
                outputs.append(EOS_TOKEN)
                request.finish_s = now
                self.requests_served += 1
                finished_context += request.input_len + request.output_len
                self.summary.record_request_latency(
                    max(0.0, now - request.arrival_s)
                )
                if request.followup is not None:
                    self.followups.append(request)
            else:
                outputs.append(0)
                still_active.append(request)
        self._remaining_tokens -= accepted_total
        self._active_context_sum += accepted_total - finished_context
        rlp = len(self.active)
        self._accepted_fraction = ServingEngine._accepted_fraction(
            accepted_total, rlp, tlp
        )
        if tlp > 1:
            self._drafted_tokens += rlp * (tlp - 1)
            self._accepted_draft_tokens += max(0, accepted_total - rlp)
        if self.moe is not None:
            tokens = rlp * tlp
            self.expert_token_visits += tokens * self.moe.experts_per_token
            self._active_expert_sum += expected_active_experts(
                self.moe.num_experts, self.moe.experts_per_token, tokens
            )
        self.system.observe_outputs(outputs)
        if self.summary.detail == "full":
            self.summary.add_iteration(
                IterationRecord(
                    iteration=self._iteration,
                    result=result,
                    tokens_accepted=accepted_total,
                    rlp_before=len(self.active),
                    rlp_after=len(still_active),
                )
            )
        else:
            self.summary.fold_iteration(result, accepted_total)
        self._iteration += 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("decoding did not converge (runaway loop)")
        self.active = still_active

        duration = self._admit(now)
        if not self.active:
            self.busy = False
            return None
        duration += self._schedule_step()
        return now + duration

    def compress_run(
        self, now: float, horizon: Optional[float]
    ) -> Optional[Tuple[float, float]]:
        """Execute a frozen run of decoding iterations in closed form.

        Called by the cluster loops in place of :meth:`on_step_done` when
        the in-flight iteration completes at ``now``, strictly before the
        next external calendar event at ``horizon`` (``None`` = none
        pending). If the batch is *frozen* — nothing admittable, fixed
        TLP, deterministic per-slot acceptance — the run of iterations up
        to the first slot completion, the horizon, or the iteration cap
        is priced segment-by-segment (one lookup per context-bucket
        crossing), timed with one sequential ``np.add.accumulate`` chain
        (bit-identical to the per-iteration float adds), and folded into
        every counter the per-iteration path would have touched.

        Returns ``(next_done_at, last_completed_at)`` — the completion
        time of the newly scheduled (still in-flight) iteration and of
        the run's last *completed* iteration (the caller's makespan
        watermark) — or ``None`` to fall back to per-iteration stepping
        (``step_macro`` records why). A ``None`` return mutates no
        simulation state; any pricing performed only warms caches.
        """
        if self._macro_off:
            return None
        pending = self._pending
        if pending is None:
            return None
        counters = self.step_macro
        steady = self._macro_steady
        if steady is None:
            reason = self._macro_eligibility()
            if reason is not None:
                # Statically ineligible: latch off so the per-iteration
                # burst loop pays one flag test, not a re-diagnosis.
                self._macro_off = True
                counters["fallback_" + reason] = 1
                return None
            steady = self._macro_steady = self.speculation.steady_slot_tokens(
                self.policy.tlp
            )
        active = self.active
        if self.waiting and len(active) < self.max_batch_size:
            counters["fallback_admittable"] = (
                counters.get("fallback_admittable", 0) + 1
            )
            return None
        result_first, tlp = pending
        if tlp != self.policy.tlp:
            counters["fallback_tlp_policy"] = (
                counters.get("fallback_tlp_policy", 0) + 1
            )
            return None
        # K's four limiting terms: first slot completion, the iteration
        # cap, the hard per-step bound, and (below) the horizon.
        min_remaining = self._macro_min_remaining()
        finish_free = (min_remaining - 1) // steady
        if finish_free < MACRO_MIN_RUN:
            counters["fallback_finish_due"] = (
                counters.get("fallback_finish_due", 0) + 1
            )
            return None
        iteration_room = MAX_ITERATIONS - 1 - self._iteration
        if iteration_room < MACRO_MIN_RUN:
            counters["fallback_iteration_cap"] = (
                counters.get("fallback_iteration_cap", 0) + 1
            )
            return None
        cap = min(finish_free, iteration_room, MACRO_MAX_RUN)
        draft = self.speculation.draft_overhead_s(tlp)
        if horizon is not None:
            # Durations are nondecreasing in context, so the in-flight
            # iteration's duration lower-bounds the rest: at most
            # (horizon - now) / d1 more iterations can fit (+1 slack for
            # the exact strict-inequality cut below).
            first_duration = draft + result_first.seconds
            if first_duration <= 0.0:
                counters["fallback_horizon"] = (
                    counters.get("fallback_horizon", 0) + 1
                )
                return None
            estimate = 2 + int((horizon - now) / first_duration)
            if estimate < MACRO_MIN_RUN:
                counters["fallback_horizon"] = (
                    counters.get("fallback_horizon", 0) + 1
                )
                return None
            cap = min(cap, estimate)
        rlp = len(active)
        per_iteration = rlp * steady
        pricer_key = (rlp, tlp)
        price = self._macro_pricer_cache.get(pricer_key)
        if price is None:
            price = self._macro_pricer(rlp, tlp)
            self._macro_pricer_cache[pricer_key] = price

        # Price iterations 2..cap+1 (cap completion candidates plus the
        # run's outgoing in-flight step). The context total entering
        # iteration i is total_0 + (i-1) * per_iteration; its raw mean
        # and bucketized mean replicate price_mean_total's arithmetic
        # exactly (np.round is round-half-even, bitwise equal to the
        # builtin on these int-ratio inputs, so the short-run scalar
        # path below and the long-run vector path are interchangeable).
        total_0 = self._active_context_sum
        bucket = self.pricer.context_bucket
        if cap <= MACRO_SMALL_RUN:
            # Scalar path: typical runs are a handful of iterations
            # (completions recur every ~1/steady_output_fraction steps),
            # where the vector pipeline's array setup costs more than it
            # saves. Plain int/float arithmetic is the reference
            # computation itself.
            seg_starts: List[int] = []
            seg_counts: List[int] = []
            segment_results: List[IterationResult] = []
            times_list = [now]
            clock = now
            total = total_0
            previous_mean = -1
            step_duration = 0.0
            for index in range(cap):
                total += per_iteration
                raw_mean = round(total / rlp)
                if raw_mean < 1:
                    raw_mean = 1
                if bucket <= 1:
                    mean = raw_mean
                else:
                    mean = round(raw_mean / bucket) * bucket
                    if mean < bucket:
                        mean = bucket
                if mean != previous_mean:
                    previous_mean = mean
                    seg_starts.append(index)
                    seg_counts.append(1)
                    result = price(raw_mean)
                    segment_results.append(result)
                    step_duration = draft + result.seconds
                else:
                    seg_counts[-1] += 1
                clock = clock + step_duration
                times_list.append(clock)
            if horizon is None:
                run = cap
            else:
                # Count completion candidates strictly before the
                # horizon (the burst loop's done_at < peek test), plus
                # the already-completed in-flight iteration.
                run = 1
                for candidate in times_list[1:]:
                    if candidate < horizon:
                        run += 1
                    else:
                        break
                if run > cap:
                    run = cap
                if run < MACRO_MIN_RUN:
                    counters["fallback_horizon"] = (
                        counters.get("fallback_horizon", 0) + 1
                    )
                    return None
            segment_index = 0
            for index, start in enumerate(seg_starts):
                if start <= run - 1:
                    segment_index = index
                else:
                    break
            counts: Sequence[int] = seg_counts
            done_at = times_list[run]
            watermark = times_list[run - 1]
        else:
            totals = (
                total_0
                + np.arange(1, cap + 1, dtype=np.int64) * per_iteration
            )
            raw_means = np.maximum(np.round(totals / rlp), 1.0).astype(
                np.int64
            )
            if bucket <= 1:
                bucket_means = raw_means
            else:
                bucket_means = np.maximum(
                    np.round(raw_means / bucket).astype(np.int64) * bucket,
                    bucket,
                )
            boundaries = (
                np.flatnonzero(bucket_means[1:] != bucket_means[:-1]) + 1
            )
            starts = np.concatenate(([0], boundaries))
            counts = np.diff(np.concatenate((starts, [cap])))
            segment_results = [price(int(raw_means[s])) for s in starts]

            # Completion times: tau_1 = now, tau_{i+1} = tau_i + (draft
            # + seconds_{i+1}) — the same one-add-per-iteration chain
            # the event loop performs, as one sequential accumulate.
            segment_durations = np.array(
                [draft + result.seconds for result in segment_results]
            )
            times = np.empty(cap + 1, dtype=np.float64)
            times[0] = now
            times[1:] = np.repeat(segment_durations, counts)
            np.add.accumulate(times, out=times)
            if horizon is None:
                run = cap
            else:
                # times[1:] holds tau_2..tau_{cap+1}; count those
                # strictly before the horizon.
                run = 1 + int(
                    np.searchsorted(times[1:], horizon, side="left")
                )
                if run > cap:
                    run = cap
                if run < MACRO_MIN_RUN:
                    counters["fallback_horizon"] = (
                        counters.get("fallback_horizon", 0) + 1
                    )
                    return None
            # Iteration run+1 leaves in flight; its segment holds array
            # index run-1 (index j prices iteration j+2).
            segment_index = (
                int(np.searchsorted(starts, run - 1, side="right")) - 1
            )
            done_at = float(times[run])
            watermark = float(times[run - 1])

        # Commit: replicate every side effect of `run` on_step_done +
        # _schedule_step rounds. No request finishes, so the slot state
        # advances uniformly and the monitor sees finish-free batches.
        self._macro_advance_slots(steady * run)
        self._remaining_tokens -= per_iteration * run
        self._active_context_sum += per_iteration * run
        self._accepted_fraction = 1.0
        if tlp > 1:
            drafted = rlp * (tlp - 1) * run
            self._drafted_tokens += drafted
            self._accepted_draft_tokens += drafted
        if self.moe is not None:
            tokens = rlp * tlp
            self.expert_token_visits += (
                tokens * self.moe.experts_per_token * run
            )
            expected = expected_active_experts(
                self.moe.num_experts, self.moe.experts_per_token, tokens
            )
            if run <= MACRO_SMALL_RUN:
                expert_sum = self._active_expert_sum
                for _ in range(run):
                    expert_sum += expected
                self._active_expert_sum = expert_sum
            else:
                chain = np.empty(run + 1, dtype=np.float64)
                chain[0] = self._active_expert_sum
                chain[1:] = expected
                np.add.accumulate(chain, out=chain)
                self._active_expert_sum = float(chain[-1])
        self.system.observe_steady(run, rlp)

        # Fold completed iterations 1..run: the in-flight result, then
        # the priced segments truncated to the run length.
        fold_segments: List[Tuple[IterationResult, int]] = [(result_first, 1)]
        needed = run - 1
        for index, count in enumerate(counts):
            if needed <= 0:
                break
            take = int(count) if count < needed else needed
            fold_segments.append((segment_results[index], take))
            needed -= take
        summary = self.summary
        if summary.detail == "full":
            records = summary.records
            iteration = self._iteration
            for result, count in fold_segments:
                for _ in range(count):
                    records.append(
                        IterationRecord(
                            iteration=iteration,
                            result=result,
                            tokens_accepted=per_iteration,
                            rlp_before=rlp,
                            rlp_after=rlp,
                        )
                    )
                    iteration += 1
        summary.fold_run_segments(fold_segments, per_iteration)
        if draft != 0.0:
            if run <= MACRO_SMALL_RUN:
                draft_total = summary.draft_seconds
                for _ in range(run):
                    draft_total += draft
                summary.draft_seconds = draft_total
            else:
                chain = np.empty(run + 1, dtype=np.float64)
                chain[0] = summary.draft_seconds
                chain[1:] = draft
                np.add.accumulate(chain, out=chain)
                summary.draft_seconds = float(chain[-1])
        self.tlp_trace.values.extend([tlp] * run)
        self._iteration += run
        self._pending = (segment_results[segment_index], tlp)
        counters["macro_steps"] = counters.get("macro_steps", 0) + 1
        counters["iterations_compressed"] = (
            counters.get("iterations_compressed", 0) + run
        )
        return done_at, watermark

    def _macro_eligibility(self) -> Optional[str]:
        """Why this replica can never macro-step, or ``None`` if it can.

        Static gates: closed-form pricing needs the rounded-mean context
        path; a frozen TLP needs exactly :class:`FixedTLP` (a subclass
        could vary its answer); and the per-slot acceptance must be
        deterministic *without consuming the sampler's RNG stream*
        (``tlp == 1``, or ``acceptance_rate >= 1.0`` — see
        :meth:`SpeculationConfig.steady_slot_tokens`), otherwise skipping
        the per-iteration draws would desynchronize later samples.
        """
        if self.pricer.context_mode != "mean":
            return "context_mode"
        if type(self.policy) is not FixedTLP:
            return "tlp_policy"
        if self.speculation.steady_slot_tokens(self.policy.tlp) is None:
            return "speculation_draws"
        return None

    def _macro_min_remaining(self) -> int:
        """Fewest output tokens any active request still owes."""
        return min(r.output_len - r.generated for r in self.active)

    def _macro_advance_slots(self, per_slot: int) -> None:
        """Advance every active slot by ``per_slot`` accepted tokens.

        Only called with ``per_slot`` strictly below every slot's
        remaining budget, so no request can finish and request state
        stays ``DECODING`` throughout — the closed form of ``run``
        consecutive ``Request.advance`` credits.
        """
        for request in self.active:
            request.generated += per_slot

    def _macro_pricer(self, rlp: int, tlp: int):
        """Mean-mode pricing callable for one frozen run (see
        :meth:`StepPricer.run_pricer`); slot-mirroring subclasses layer
        their per-replica memo on top."""
        return self.pricer.run_pricer(rlp, tlp)

    def _prefill_done(self, now: float) -> Optional[float]:
        """A prefill-role batch reached first token; hand off or finish.

        Every request in the batch emits exactly one token. Single-token
        requests finish here; the rest turn ``TRANSFERRING`` and join
        :attr:`outbound` for the cluster loop to ship to the decode
        pool. Either way the whole batch leaves this replica, so the
        incremental counters shed each request's remaining output and
        full KV context.
        """
        if not self.active:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no prefill "
                "batch in flight"
            )
        accepted_total = 0
        departed_remaining = 0
        departed_context = 0
        for request in self.active:
            request.first_token_s = now
            accepted_total += request.advance(1, self._iteration)
            if request.is_finished:
                request.finish_s = now
                self.requests_served += 1
                departed_context += request.input_len + request.output_len
                self.summary.record_request_latency(
                    max(0.0, now - request.arrival_s)
                )
                if request.followup is not None:
                    self.followups.append(request)
            else:
                request.phase = RequestPhase.TRANSFERRING
                self.outbound.append(request)
                self.requests_transferred += 1
                departed_remaining += request.output_len - request.generated
                departed_context += request.input_len + request.generated
        self._remaining_tokens -= accepted_total + departed_remaining
        self._active_context_sum += accepted_total - departed_context
        self.summary.tokens_generated += accepted_total
        self._iteration += 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("prefill backlog did not converge")
        self.active = []
        self._clear_slots()
        duration = self._admit(now)
        if not self.active:
            self.busy = False
            return None
        return now + duration

    def _clear_slots(self) -> None:
        """Hook for slot-mirroring subclasses: a prefill-role batch
        departs wholesale, so any per-slot state resets with it."""

    def finalize(self, makespan_s: float) -> RunSummary:
        """Close out the run summary once the cluster trace has drained."""
        if (
            self.waiting
            or self.active
            or self.busy
            or self.outbound
            or self.followups
        ):
            raise SimulationError(
                f"replica {self.replica_id} finalized with work outstanding"
            )
        self.summary.reschedules = self.reschedule_count()
        self.summary.makespan_seconds = makespan_s
        return self.summary

    # -- internals -------------------------------------------------------

    def _admit(self, now: float) -> float:
        """Fill open batch slots; returns the prefill seconds charged.

        Role variants: a decode-role replica admits transferred
        requests whose context is already prefilled — it charges no
        prompt pass and counts queueing from the KV transfer's
        completion, not the cluster arrival. A prefill-role replica
        charges the prompt pass but never forms a decoding batch (its
        capacity bound is the first-token context, and the scheduler is
        never engaged).
        """
        fresh: List[Request] = []
        while self.waiting and (
            len(self.active) + len(fresh) < self.max_batch_size
        ):
            request = self.waiting.popleft()
            request.state = RequestState.PREFILLING
            self._waiting_context_sum -= request.input_len + request.generated
            self._active_context_sum += request.input_len + request.generated
            fresh.append(request)
        if not fresh:
            return 0.0
        if self.check_capacity:
            cohort = self.active + fresh
            if self.role == "prefill":
                max_seq = max(r.input_len + 1 for r in cohort)
            else:
                max_seq = max(r.input_len + r.output_len for r in cohort)
            self.system.check_capacity(
                self.model, len(cohort), max_seq, moe=self.moe
            )
        if self.role == "decode":
            self.summary.queueing_seconds += sum(
                max(0.0, now - r.transfer_done_s) for r in fresh
            )
            for request in fresh:
                request.state = RequestState.DECODING
            self.active.extend(fresh)
            self.system.begin_batch(len(self.active), self._current_tlp)
            return 0.0
        self.summary.queueing_seconds += sum(
            max(0.0, now - r.arrival_s) for r in fresh
        )
        if self.prefix_cache is not None:
            # The serving-path cache read: a resident prefix discounts
            # the prompt pass to the fresh suffix (KV capacity and
            # transfer still cover the full context — the cache spares
            # prompt *computation*, not memory). The turn's final
            # context becomes resident for the session's next turn;
            # turns are serial, so it is valid by the time that turn
            # can arrive. Non-session requests pass through untouched
            # (prefill_len == input_len), keeping independent traces
            # byte-identical.
            for request in fresh:
                if request.session_id is None:
                    continue
                if request.prefix_len > 0:
                    request.cached_prefix_len = self.prefix_cache.lookup(
                        request.session_id, request.prefix_len
                    )
                self.prefix_cache.insert(
                    request.session_id,
                    request.input_len + request.output_len,
                )
        mean_input = max(
            1, round(sum(r.prefill_len for r in fresh) / len(fresh))
        )
        result = self.system.execute_prefill(self.model, len(fresh), mean_input)
        self.summary.prefill_seconds += result.seconds
        self.summary.prefill_energy += result.energy_joules
        if self.role == "prefill":
            # The batch stays PREFILLING until `_prefill_done` emits the
            # first tokens; no decoding batch begins on this replica.
            self.active.extend(fresh)
            return result.seconds
        for request in fresh:
            request.state = RequestState.DECODING
        self.active.extend(fresh)
        self.system.begin_batch(len(self.active), self._current_tlp)
        return result.seconds

    def _schedule_step(self) -> float:
        """Price the next iteration; returns its duration (draft + step)."""
        rlp = len(self.active)
        tlp = self.policy.next_tlp(self._iteration, rlp, self._accepted_fraction)
        if tlp != self._current_tlp:
            self.system.update_tlp(tlp)
            self._current_tlp = tlp
        self.tlp_trace.record(tlp)
        if (
            self.load_accounting == "incremental"
            and self.pricer.context_mode == "mean"
        ):
            # The active-context counter is exactly the sum price() would
            # recompute; skip the O(batch) pass per iteration.
            result = self.pricer.price_mean_total(
                rlp, tlp, self._active_context_sum
            )
        else:
            result = self.pricer.price(self.active, tlp)
        draft = self.speculation.draft_overhead_s(tlp)
        self.summary.draft_seconds += draft
        self._pending = (result, tlp)
        return draft + result.seconds

    # -- standalone single-replica loop ----------------------------------

    def serve_trace(self, requests: Sequence[Request]) -> RunSummary:
        """Serve an arrival-stamped trace on this replica alone.

        The single-replica degenerate case of the cluster event loop;
        :meth:`ServingEngine.run_trace` delegates here. Runs the one
        shared event loop (``ClusterSimulator.run``) rather than keeping a
        private copy of the dispatch logic.
        """
        # Imported here: repro.cluster.cluster imports this module.
        from repro.cluster.cluster import ClusterSimulator
        from repro.cluster.router import RoundRobinRouter

        ClusterSimulator([self], RoundRobinRouter()).run(requests)
        return self.summary
