"""Array-backed fleet state: the vectorized cluster core's data plane.

The event-driven cluster core (PR 5) answers every routing probe and
admission projection by looping Python ``Replica`` objects — ~64 attribute
walks, dict probes, and placement plans per arrival. This module keeps
the *same* per-replica state machines but mirrors the fleet's load
counters into flat numpy arrays, so the per-arrival hot path becomes a
handful of vector operations across all replicas at once (the HBM-PIM
simulator idiom: bank state as dense tensors advanced in bulk):

* :class:`FleetState` — a sequence view over the replicas plus fleet-wide
  arrays of the incremental load counters (``_remaining_tokens``, active/
  waiting context sums, batch occupancy, current TLP). Routing probes
  (:meth:`FleetState.fleet_step_seconds`,
  :meth:`FleetState.fleet_completion_seconds`) project every replica's
  post-admission batch shape with vector arithmetic and gather prices
  from per-group dense tables; misses are priced through the *same*
  pinned-target :func:`~repro.systems.batch.price_steps_at` path the
  fleet-batched core uses, so every lane stays bit-identical to the
  scalar probe.
* :class:`VectorReplica` — a :class:`~repro.cluster.replica.Replica`
  whose per-step bookkeeping runs on primitive slot arrays (remaining
  tokens and context per batch slot as plain ints) instead of request
  objects, with a memo in front of step pricing. Request objects are
  only touched when a request *finishes* (stamping final state for the
  tenant reports), not once per iteration.

Price-table soundness: a projected step price is keyed by
``(fc target, rlp, tlp, bucketed mean context)`` within a group of
configuration-equal systems serving one workload. The FC placement is
*not* a pure function of ``(rlp, tlp)`` — PAPI's standing decision can
lag the stateless ``rlp * tlp > alpha`` rule right after a TLP-policy
register write — so each probe resolves every replica's target through
that replica's own ``plan_fc_target`` (exactly as the scalar and
fleet-batched reference probes do) and the target is part of the table
index. This is the same key discipline the shared step-cost cache
documents: divergent scheduler state between replicas can never alias.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.replica import Replica
from repro.cluster.router import ADMISSION_CONTEXT_BUCKET
from repro.core.placement import PlacementTarget
from repro.errors import ConfigurationError, SimulationError
from repro.models.workload import build_step_grid
from repro.serving.engine import MAX_ITERATIONS, ServingEngine
from repro.serving.metrics import IterationRecord
from repro.serving.request import Request, RequestState
from repro.serving.tlp_policy import FixedTLP
from repro.systems.baselines import A100AttAccSystem, AttAccOnlySystem
from repro.systems.batch import price_steps_at
from repro.systems.papi import PAPISystem, PIMOnlyPAPISystem

#: Step-price memo bound per replica (see ``VectorReplica``). Entries are
#: pure functions of their key, so clearing a full memo can only cost
#: recomputation, never correctness.
STEP_MEMO_ENTRIES = 1 << 16

#: Dense-table index of each FC placement a probe can resolve (FC runs
#: on the PUs or on FC-PIM, nowhere else).
TARGET_CODES = {PlacementTarget.PU: 0, PlacementTarget.FC_PIM: 1}
CODE_TARGETS = (PlacementTarget.PU, PlacementTarget.FC_PIM)

#: FC planners the probes can evaluate as array arithmetic, recognized
#: by function identity (a subclass overriding ``plan_fc_target`` falls
#: back to per-lane resolution). ``PLAN_PAPI`` is the standing-decision
#: + ``rlp * tlp > alpha`` rule; the constant planners always place FC
#: on one unit.
PLAN_PAPI = 0
PLAN_CONSTANT_PU = 1
PLAN_CONSTANT_FC = 2
PLAN_GENERIC = 3

_PLAN_KINDS = {
    PAPISystem.plan_fc_target: PLAN_PAPI,
    A100AttAccSystem.plan_fc_target: PLAN_CONSTANT_PU,
    PIMOnlyPAPISystem.plan_fc_target: PLAN_CONSTANT_FC,
    AttAccOnlySystem.plan_fc_target: PLAN_CONSTANT_FC,
}


def _planner_kind(system) -> int:
    """How a probe may resolve this system's FC placement in bulk."""
    return _PLAN_KINDS.get(type(system).plan_fc_target, PLAN_GENERIC)


class VectorReplica(Replica):
    """Replica with primitive slot state for the vectorized core.

    Event semantics, pricing, and every reported number are identical to
    :class:`~repro.cluster.replica.Replica` — the equivalence suite pins
    the outputs bit-for-bit. What changes is the per-iteration machinery:

    * Remaining tokens and context length per batch slot live in parallel
      ``List[int]`` mirrors (``_slot_remaining`` / ``_slot_context``), so
      the step-done loop touches plain ints instead of request
      attributes, and :class:`Request` objects are only written when a
      request finishes.
    * Step pricing goes through a per-replica memo keyed by
      ``(rlp, tlp, context key)`` in front of the shared step cache —
      placement planning is a pure function of that key (see module
      docstring), so the memo is exact.
    * The runtime monitor is fed the *count* of finished requests
      (:meth:`~repro.systems.base.ServingSystem.observe_finished`)
      instead of a per-request output vector.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.load_accounting != "incremental":
            raise ConfigurationError(
                "the vectorized core requires load_accounting='incremental' "
                "(its fleet arrays mirror the incremental counters)"
            )
        self._slot_remaining: List[int] = []
        self._slot_context: List[int] = []
        self._slot_total: List[int] = []
        self._price_memo: Dict[tuple, object] = {}
        self._prefill_memo: Dict[tuple, object] = {}
        self._capacity_ok: set = set()
        self._draft_of: Dict[int, float] = {}
        # Prefill's FC target is re-planned per call; memoizing its price
        # is only sound when the planner provably cannot vary it with
        # scheduler state (every recognized planner — the probe-time
        # ``rlp=10**6`` sentinel can never match a standing decision).
        self._pure_planner = _planner_kind(self.system) != PLAN_GENERIC
        # Exactly ``FixedTLP`` (not a subclass) provably returns its
        # constant from ``next_tlp`` — skip the call per step.
        self._fixed_tlp = (
            self.policy.tlp if type(self.policy) is FixedTLP else None
        )

    # -- event handlers ---------------------------------------------------

    def on_step_done(self, now: float) -> Optional[float]:
        """Slot-array twin of :meth:`Replica.on_step_done`."""
        if self.role == "prefill":
            return self._prefill_done(now)
        if self._pending is None:
            raise SimulationError(
                f"replica {self.replica_id}: STEP_DONE with no step in flight"
            )
        result, tlp = self._pending
        self._pending = None

        active = self.active
        remaining = self._slot_remaining
        contexts = self._slot_context
        rlp = len(active)
        finished: List[int] = []
        if tlp == 1:
            # No draft model => exactly one token accepted per slot. The
            # common shape — nothing finishing this step — runs as two
            # C-speed list comprehensions instead of a Python slot loop.
            accepted_total = rlp
            if 1 not in remaining:
                remaining = [rem - 1 for rem in remaining]
                contexts = [ctx + 1 for ctx in contexts]
                self._slot_remaining = remaining
                self._slot_context = contexts
            else:
                for i in range(rlp):
                    rem = remaining[i]
                    if rem == 1:
                        finished.append(i)
                        remaining[i] = 0
                    else:
                        remaining[i] = rem - 1
                        contexts[i] += 1
        else:
            sampler = self.sampler
            accepted_total = 0
            for i in range(rlp):
                rem = remaining[i]
                accepted = sampler.accepted_tokens(tlp)
                credited = accepted if accepted < rem else rem
                accepted_total += credited
                if credited == rem:
                    finished.append(i)
                    remaining[i] = 0
                else:
                    remaining[i] = rem - credited
                    contexts[i] += credited

        summary = self.summary
        iteration = self._iteration
        finished_context = 0
        if finished:
            self.requests_served += len(finished)
            # ``record_request_latency`` inlined: ``max(0.0, ...)``
            # already guarantees the non-negativity it validates.
            latencies = summary.request_latencies
            for i in finished:
                request = active[i]
                request.generated = request.output_len
                request.state = RequestState.FINISHED
                request.finish_iteration = iteration
                request.finish_s = now
                finished_context += request.input_len + request.output_len
                latencies.append(max(0.0, now - request.arrival_s))
                if request.followup is not None:
                    self.followups.append(request)
        self._remaining_tokens -= accepted_total
        self._active_context_sum += accepted_total - finished_context
        if tlp == 1:
            # ``_accepted_fraction``'s tlp <= 1 branch, inlined.
            self._accepted_fraction = 1.0
        else:
            self._accepted_fraction = ServingEngine._accepted_fraction(
                accepted_total, rlp, tlp
            )
            self._drafted_tokens += rlp * (tlp - 1)
            self._accepted_draft_tokens += max(0, accepted_total - rlp)
        if self.moe is not None:
            from repro.models.moe import expected_active_experts

            tokens = rlp * tlp
            self.expert_token_visits += tokens * self.moe.experts_per_token
            self._active_expert_sum += expected_active_experts(
                self.moe.num_experts, self.moe.experts_per_token, tokens
            )
        self.system.observe_finished(len(finished), rlp)
        if summary.detail == "full":
            summary.add_iteration(
                IterationRecord(
                    iteration=iteration,
                    result=result,
                    tokens_accepted=accepted_total,
                    rlp_before=rlp,
                    rlp_after=rlp - len(finished),
                )
            )
        else:
            summary.fold_iteration(result, accepted_total)
        self._iteration = iteration + 1
        if self._iteration >= MAX_ITERATIONS:
            raise SimulationError("decoding did not converge (runaway loop)")
        if finished:
            totals = self._slot_total
            self.active = [a for a, rem in zip(active, remaining) if rem]
            self._slot_context = [
                ctx for ctx, rem in zip(contexts, remaining) if rem
            ]
            self._slot_total = [
                t for t, rem in zip(totals, remaining) if rem
            ]
            self._slot_remaining = [rem for rem in remaining if rem]

        duration = self._admit(now) if self.waiting else 0.0
        if not self.active:
            self.busy = False
            return None
        duration += self._schedule_step()
        return now + duration

    # -- internals --------------------------------------------------------

    def _admit(self, now: float) -> float:
        """Memoized twin of :meth:`Replica._admit`, mirroring fresh slots.

        Prefill pricing is a pure function of ``(cohort size, mean input
        length)`` and the capacity check of ``(cohort size, max sequence
        length)`` on a fixed system configuration, so both run through
        memos (shared across a price group, see
        :meth:`FleetState._share_price_memos`); every state transition —
        queue pops, context counters, queueing/prefill accounting,
        ``begin_batch`` — matches the reference line for line.

        Role variants mirror :meth:`Replica._admit`: a prefill-role
        batch departs wholesale at first token and never forms a
        decoding batch, so the scalar reference body (which keeps no
        slot mirrors) is already exact for it; a decode-role batch skips
        the prompt pass and counts queueing from the KV transfer's
        completion.
        """
        if self.role == "prefill":
            return Replica._admit(self, now)
        active = self.active
        waiting = self.waiting
        max_batch = self.max_batch_size
        if not waiting or len(active) >= max_batch:
            return 0.0
        fresh: List[Request] = []
        while waiting and len(active) + len(fresh) < max_batch:
            request = waiting.popleft()
            request.state = RequestState.PREFILLING
            self._waiting_context_sum -= request.input_len + request.generated
            self._active_context_sum += request.input_len + request.generated
            fresh.append(request)
        if self.check_capacity:
            cohort = len(active) + len(fresh)
            # The active slots' total lengths live in the _slot_total
            # mirror: one C-speed max over plain ints instead of a
            # request-attribute generator walk per admission.
            max_seq = max(r.input_len + r.output_len for r in fresh)
            slot_total = self._slot_total
            if slot_total:
                active_max = max(slot_total)
                if active_max > max_seq:
                    max_seq = active_max
            key = (cohort, max_seq)
            if key not in self._capacity_ok:
                self.system.check_capacity(
                    self.model, cohort, max_seq, moe=self.moe
                )
                self._capacity_ok.add(key)
        summary = self.summary
        if self.role == "decode":
            # Transferred requests arrive with their context already
            # prefilled: no prompt pass, and their wait is measured from
            # the KV transfer landing, not the cluster arrival.
            summary.queueing_seconds += sum(
                max(0.0, now - r.transfer_done_s) for r in fresh
            )
            seconds = 0.0
        else:
            summary.queueing_seconds += sum(
                max(0.0, now - r.arrival_s) for r in fresh
            )
            if self.prefix_cache is not None:
                # Same call site and order as the reference ``_admit``,
                # so LRU state and hit/miss sequences evolve
                # bit-identically across cores. The memo below stays
                # sound: the discount enters through ``mean_input``,
                # and the prefill price is a pure function of
                # ``(count, mean_input)`` regardless of how the mean
                # was discounted.
                for request in fresh:
                    if request.session_id is None:
                        continue
                    if request.prefix_len > 0:
                        request.cached_prefix_len = self.prefix_cache.lookup(
                            request.session_id, request.prefix_len
                        )
                    self.prefix_cache.insert(
                        request.session_id,
                        request.input_len + request.output_len,
                    )
            count = len(fresh)
            mean_input = max(
                1, round(sum(r.prefill_len for r in fresh) / count)
            )
            memo = self._prefill_memo
            result = memo.get((count, mean_input))
            if result is None:
                result = self.system.execute_prefill(
                    self.model, count, mean_input
                )
                if self._pure_planner:
                    memo[(count, mean_input)] = result
            summary.prefill_seconds += result.seconds
            summary.prefill_energy += result.energy_joules
            seconds = result.seconds
        slot_remaining = self._slot_remaining
        slot_context = self._slot_context
        slot_total = self._slot_total
        for request in fresh:
            request.state = RequestState.DECODING
            input_len = request.input_len
            generated = request.generated
            slot_remaining.append(request.output_len - generated)
            slot_context.append(input_len + generated)
            slot_total.append(input_len + request.output_len)
        active.extend(fresh)
        self.system.begin_batch(len(active), self._current_tlp)
        return seconds

    def _clear_slots(self) -> None:
        """A prefill-role batch departs wholesale; reset the mirrors."""
        self._slot_remaining = []
        self._slot_context = []
        self._slot_total = []

    def _schedule_step(self) -> float:
        """Memoized twin of :meth:`Replica._schedule_step`."""
        rlp = len(self.active)
        tlp = self._fixed_tlp
        if tlp is None:
            tlp = self.policy.next_tlp(
                self._iteration, rlp, self._accepted_fraction
            )
        if tlp != self._current_tlp:
            self.system.update_tlp(tlp)
            self._current_tlp = tlp
        self.tlp_trace.values.append(tlp)
        pricer = self.pricer
        # The planned FC placement is part of the key: PAPI's standing
        # decision is scheduler state (it can lag the stateless rule
        # right after the TLP register write above), and the price the
        # pricer computes is a pure function of (target, rlp, tlp,
        # contexts) — the step-cost cache's own key discipline. In mean
        # mode the key carries the derived mean context, not the raw sum:
        # ``price_mean_total``'s first move is exactly this arithmetic,
        # so every context sum collapsing to one mean shares one entry —
        # and the memo can be shared across a whole price group (see
        # :meth:`FleetState._share_price_memos`).
        target = self.system.plan_fc_target(rlp, tlp)
        code = 0 if target is PlacementTarget.PU else 1
        if pricer.context_mode == "mean":
            total = self._active_context_sum
            key = (code, rlp, tlp, max(1, round(total / rlp)))
            memo = self._price_memo
            result = memo.get(key)
            if result is None:
                result = pricer.price_mean_total(rlp, tlp, total)
                if len(memo) >= STEP_MEMO_ENTRIES:
                    memo.clear()
                memo[key] = result
        else:
            key = (code, rlp, tlp, tuple(self._slot_context))
            memo = self._price_memo
            result = memo.get(key)
            if result is None:
                result = pricer.price_contexts(self._slot_context, tlp)
                if len(memo) >= STEP_MEMO_ENTRIES:
                    memo.clear()
                memo[key] = result
        draft = self._draft_of.get(tlp)
        if draft is None:
            draft = self._draft_of[tlp] = self.speculation.draft_overhead_s(tlp)
        self.summary.draft_seconds += draft
        self._pending = (result, tlp)
        return draft + result.seconds

    # -- macro-stepping hooks (see Replica.compress_run) -------------------

    def _macro_min_remaining(self) -> int:
        """Fewest remaining tokens, from the slot mirror."""
        return min(self._slot_remaining)

    def _macro_advance_slots(self, per_slot: int) -> None:
        """Advance the slot mirrors uniformly (no slot can finish).

        ``_slot_total`` is invariant during decoding; request objects are
        only touched at finish/compaction, which a frozen run excludes.
        """
        self._slot_remaining = [
            rem - per_slot for rem in self._slot_remaining
        ]
        self._slot_context = [ctx + per_slot for ctx in self._slot_context]

    def _macro_pricer(self, rlp: int, tlp: int):
        """Layer the per-replica step memo over the run pricer.

        Keys match :meth:`_schedule_step`'s mean-mode discipline —
        ``(target code, rlp, tlp, raw mean)`` — so a macro-run and the
        per-iteration path populate one shared (group-shareable) memo.
        """
        price_mean = self.pricer.run_pricer(rlp, tlp)
        target = self.system.plan_fc_target(rlp, tlp)
        code = 0 if target is PlacementTarget.PU else 1
        memo = self._price_memo

        def price(raw_mean: int):
            key = (code, rlp, tlp, raw_mean)
            result = memo.get(key)
            if result is None:
                result = price_mean(raw_mean)
                if len(memo) >= STEP_MEMO_ENTRIES:
                    memo.clear()
                memo[key] = result
            return result

        return price


class _PriceGroup:
    """One interchangeable-pricing group of a fleet's replicas.

    Replicas sharing a configuration-equal system and the same workload
    price identically (the same grouping the PR 5 fleet-batched pricer
    derives from the shared cache's scope), so one dense table of step
    prices — indexed ``[fc target, rlp, tlp, context bucket]``, ``NaN``
    marking unpriced points — serves them all.
    """

    __slots__ = ("indices", "representative", "table", "entries")

    def __init__(
        self, indices: Optional[np.ndarray], representative: Replica
    ) -> None:
        self.indices = indices  # None => the whole fleet (single group)
        self.representative = representative
        self.table = np.full(
            (len(CODE_TARGETS), 1, 1, 1), np.nan, dtype=np.float64
        )
        self.entries = 0

    def ensure(self, rlp_max: int, tlp_max: int, ctx_max: int) -> None:
        """Grow the table (geometrically) to cover the given indices."""
        shape = self.table.shape
        if rlp_max < shape[1] and tlp_max < shape[2] and ctx_max < shape[3]:
            return
        new_shape = (
            shape[0],
            max(2 * shape[1], rlp_max + 1),
            max(2 * shape[2], tlp_max + 1),
            max(2 * shape[3], ctx_max + 1),
        )
        grown = np.full(new_shape, np.nan, dtype=np.float64)
        grown[:, : shape[1], : shape[2], : shape[3]] = self.table
        self.table = grown


class FleetState:
    """Sequence view of the fleet plus flat arrays of its load counters.

    Drop-in wherever the cluster passes its replica list (routers index
    and iterate it like a list), with three additions the vectorized hot
    paths dispatch on:

    * :meth:`fleet_step_seconds` / :meth:`fleet_completion_seconds` —
      array-parallel twins of the ``projected_*_fleet`` probes (the
      router module forwards to these when present).
    * :meth:`outstanding_counts` — queued + active per replica, for
      vectorized router ranking.
    * :meth:`mark_dirty` / ``_flush`` — the simulator marks a replica
      after handling its event; arrays refresh lazily at the next probe,
      so a burst of step events between two arrivals costs one refresh.

    The arrays mirror the replicas' incremental integer counters exactly
    — the probes compute the same integer/float arithmetic the scalar
    probes do, elementwise, so results are bit-identical.
    """

    def __init__(self, replicas: Sequence[Replica]) -> None:
        fleet = list(replicas)
        if not fleet:
            raise ConfigurationError("cluster needs at least one replica")
        for replica in fleet:
            if replica.load_accounting != "incremental":
                raise ConfigurationError(
                    "FleetState mirrors the incremental load counters; "
                    f"replica {replica.replica_id} uses "
                    f"{replica.load_accounting!r} accounting"
                )
        self._replicas = fleet
        n = len(fleet)
        self.active_count = np.zeros(n, dtype=np.int64)
        self.waiting_count = np.zeros(n, dtype=np.int64)
        self.active_context = np.zeros(n, dtype=np.int64)
        self.waiting_context = np.zeros(n, dtype=np.int64)
        self.remaining_tokens = np.zeros(n, dtype=np.int64)
        self.current_tlp = np.zeros(n, dtype=np.int64)
        self.max_batch = np.asarray(
            [replica.max_batch_size for replica in fleet], dtype=np.int64
        )
        self.draft_overhead = np.asarray(
            [replica.draft_overhead_per_iteration_s for replica in fleet],
            dtype=np.float64,
        )
        self.expected_tokens = np.asarray(
            [replica.expected_tokens_per_iteration for replica in fleet],
            dtype=np.float64,
        )
        # expected * max_batch, precomputed elementwise — identical to the
        # scalar probe's per-call float product.
        self._drain_denominator = self.expected_tokens * self.max_batch
        self._dirty: set = set(range(n))
        self.hits = 0
        self.misses = 0
        self._groups = self._build_groups()
        self._share_price_memos()
        # FC-planner vectorization: when every system follows one of the
        # recognized planners, probes resolve all lanes' placements as
        # array arithmetic over mirrored scheduler state instead of ~n
        # Python calls. Any unrecognized planner drops the whole fleet to
        # the per-lane reference path.
        kinds = {_planner_kind(replica.system) for replica in fleet}
        self._uniform_planner = kinds.pop() if len(kinds) == 1 else PLAN_GENERIC
        self._mirror_scheduler = self._uniform_planner == PLAN_PAPI
        if self._mirror_scheduler:
            self._sched_rlp = np.zeros(n, dtype=np.int64)
            self._sched_tlp = np.zeros(n, dtype=np.int64)
            self._sched_code = np.full(n, -1, dtype=np.int64)
            self._alpha = np.asarray(
                [replica.system.alpha for replica in fleet], dtype=np.float64
            )
        self._constant_codes = (
            np.zeros(n, dtype=np.int64)
            if self._uniform_planner == PLAN_CONSTANT_PU
            else np.ones(n, dtype=np.int64)
            if self._uniform_planner == PLAN_CONSTANT_FC
            else None
        )
        # Probe scratch buffers: a routing probe runs a fixed pipeline of
        # elementwise passes over n-lane arrays, and at fleet widths the
        # allocator — not the arithmetic — dominates a fresh-temporary
        # formulation. Every pass below writes into one of these via
        # ``out=``; none survive a probe, so reuse is safe.
        self._sc_rlp = np.empty(n, dtype=np.int64)
        self._sc_slots = np.empty(n, dtype=np.int64)
        self._sc_total = np.empty(n, dtype=np.int64)
        self._sc_ctx = np.empty(n, dtype=np.int64)
        self._sc_codes = np.empty(n, dtype=np.int64)
        self._sc_outstanding = np.empty(n, dtype=np.int64)
        self._sc_mean = np.empty(n, dtype=np.float64)
        self._sc_per = np.empty(n, dtype=np.float64)
        self._sc_own = np.empty(n, dtype=np.float64)
        self._sc_backlog = np.empty(n, dtype=np.float64)
        self._sc_mask1 = np.empty(n, dtype=np.bool_)
        self._sc_mask2 = np.empty(n, dtype=np.bool_)
        self._rlp_cap = int(self.max_batch.max())
        # Step-array identity cache: the admission controller prices the
        # fleet and immediately projects completions from the list it got
        # back; keeping the array twin of the last returned list skips a
        # list -> array round trip per consultation.
        self._last_step_list: Optional[List[float]] = None
        self._last_step_array: Optional[np.ndarray] = None
        # Incremental probe cache (homogeneous fleets): between two step
        # probes only the replicas that handled an event can have changed,
        # so the previous probe's per-lane values stay exact everywhere
        # else. ``_probe_dirty`` collects changed lanes (a second consumer
        # of ``mark_dirty``, drained independently of ``_flush``);
        # ``_probe_sensitive`` holds the lanes whose projection included
        # the candidate's own input length (``slots > waiting``) — those
        # also refresh when a probe carries a different ``input_len``.
        self._probe_values: Optional[np.ndarray] = None
        self._probe_dirty: set = set()
        self._probe_sensitive: set = set()
        self._probe_input_len = -1
        # Fleet version + verdict memos (the arrival-run coalescing
        # layer): ``version`` advances on every router-visible state
        # change (``mark_dirty``), and the memos below — whole-fleet step
        # vectors, completion vectors, and routing orders keyed by the
        # probe's plan-group key — are valid exactly while the version
        # holds still. Back-to-back arrivals against an unchanged fleet
        # (deferral storms above all) reuse the prior verdict in O(1)
        # instead of re-pricing O(lanes); any admit or step event bumps
        # the version and drops the memos wholesale.
        self.version = 0
        self._memo_version = 0
        self._steps_memo: Dict[int, np.ndarray] = {}
        self._completion_memo: Dict[
            Tuple[int, int], Tuple[np.ndarray, float]
        ] = {}
        self._order_memo: Dict[int, np.ndarray] = {}
        # Request-independent factors of the completion projection,
        # shared across a frozen-version segment's distinct output
        # lengths (``per_iteration`` per steps key, ``backlog`` per
        # version).
        self._per_memo: Dict[int, np.ndarray] = {}
        self._backlog_cache: Optional[np.ndarray] = None
        self.probe_hits = 0
        self.probe_misses = 0
        self.runs_coalesced = 0
        self._homogeneous = (
            len(self._groups) == 1 and self._groups[0].indices is None
        )
        self._sc_slack = np.empty(n, dtype=np.float64)
        self._flush()

    # -- sequence protocol (routers treat the fleet as a list) ------------

    def __len__(self) -> int:
        return len(self._replicas)

    def __getitem__(self, index):
        return self._replicas[index]

    def __iter__(self):
        return iter(self._replicas)

    # -- counter mirroring -------------------------------------------------

    def mark_dirty(self, index: int) -> None:
        """Note that ``replicas[index]``'s counters changed.

        Advances the fleet version exactly once per call: the simulator
        marks a replica once per handled event, so the version counts
        router-visible state changes — admission/routing verdicts cached
        at an older version can never be served again (see
        :meth:`_sync_memo`). Decisions that change no fleet state (a
        rejection, a deferral) never mark, which is precisely why a
        deferral storm holds the version still and re-probes stay O(1).
        """
        self._dirty.add(index)
        self._probe_dirty.add(index)
        self.version += 1

    def _flush(self) -> None:
        dirty = self._dirty
        if not dirty:
            return
        replicas = self._replicas
        active_count = self.active_count
        waiting_count = self.waiting_count
        active_context = self.active_context
        waiting_context = self.waiting_context
        remaining_tokens = self.remaining_tokens
        current_tlp = self.current_tlp
        mirror = self._mirror_scheduler
        for index in dirty:
            replica = replicas[index]
            active_count[index] = len(replica.active)
            waiting_count[index] = len(replica.waiting)
            active_context[index] = replica._active_context_sum
            waiting_context[index] = replica._waiting_context_sum
            remaining_tokens[index] = replica._remaining_tokens
            current_tlp[index] = replica._current_tlp
            if mirror:
                scheduler = replica.system.scheduler
                self._sched_rlp[index] = scheduler.rlp
                self._sched_tlp[index] = scheduler.tlp_register.read()
                target = scheduler.current_target
                self._sched_code[index] = (
                    -1
                    if target is None
                    else 0
                    if target is PlacementTarget.PU
                    else 1
                )
        dirty.clear()

    # -- grouping ----------------------------------------------------------

    def _build_groups(self) -> List[_PriceGroup]:
        """Group replicas by interchangeable pricing.

        Same criterion as the fleet-batched pricer's cache scopes —
        configuration-equal system (type + dataclass equality) serving
        the same workload — plus the pricer's context accounting knobs,
        so group members can also share one step-price memo. A
        homogeneous fleet collapses to one group with ``indices=None``
        (the fast whole-array path).
        """
        members: List[Tuple[Replica, List[int]]] = []
        for index, replica in enumerate(self._replicas):
            for representative, indices in members:
                if (
                    type(representative.system) is type(replica.system)
                    and representative._workload_name == replica._workload_name
                    and representative.pricer.context_mode
                    == replica.pricer.context_mode
                    and representative.pricer.context_bucket
                    == replica.pricer.context_bucket
                    and representative.system == replica.system
                ):
                    indices.append(index)
                    break
            else:
                members.append((replica, [index]))
        if len(members) == 1:
            return [_PriceGroup(None, members[0][0])]
        return [
            _PriceGroup(np.asarray(indices, dtype=np.intp), representative)
            for representative, indices in members
        ]

    def _share_price_memos(self) -> None:
        """Give each price group's vector replicas one shared step memo.

        A step price is a pure function of ``(planned target, rlp, tlp,
        context key)`` on a configuration-equal system serving the same
        workload with the same context accounting — the grouping
        criterion — so one replica's priced entry is exactly what any
        group member's pricer would return (the shared step-cost cache
        relies on the same interchangeability). Sharing turns the
        per-replica warmup (each replica missing the same operating
        points) into one warm table per group.
        """
        for group in self._groups:
            indices = (
                range(len(self._replicas))
                if group.indices is None
                else group.indices.tolist()
            )
            memo: Dict[tuple, object] = {}
            prefill_memo: Dict[tuple, object] = {}
            capacity_ok: set = set()
            for index in indices:
                replica = self._replicas[index]
                if isinstance(replica, VectorReplica):
                    replica._price_memo = memo
                    replica._prefill_memo = prefill_memo
                    replica._capacity_ok = capacity_ok

    # -- vectorized probes -------------------------------------------------

    def outstanding_counts(self) -> np.ndarray:
        """Queued + active requests per replica (router ranking)."""
        self._flush()
        return np.add(
            self.active_count, self.waiting_count, out=self._sc_outstanding
        )

    def _projected_loads(self, input_len: int) -> Tuple[np.ndarray, np.ndarray]:
        """(RLP, bucketed-context table index) per replica if a request joined.

        The array twin of
        :meth:`~repro.cluster.replica.Replica.projected_admission_load`
        followed by the probes' context bucketing: the same integer sums,
        the same half-even rounding (``np.rint`` == Python ``round`` on
        the same float64), elementwise across the fleet, every pass into
        a preallocated scratch buffer. The second array is the bucketed
        mean context *divided by the bucket* (the dense-table index);
        multiply back for the probe-key value.
        """
        active = self.active_count
        waiting = self.waiting_count
        rlp = np.add(active, waiting, out=self._sc_rlp)
        rlp += 1
        np.minimum(rlp, self.max_batch, out=rlp)
        slots = np.subtract(rlp, active, out=self._sc_slots)
        total = self._sc_total
        np.copyto(total, self.active_context)
        # Saturated fleets (every batch full, deep queues) project no
        # queue tail into any lane: with all slots at zero, none of the
        # masked additions below could fire, so skip the whole pass.
        if slots.any():
            # tail: the whole queue joins (slots >= waiting); full: the
            # candidate joins too (slots > waiting).
            tail = np.greater_equal(slots, waiting, out=self._sc_mask1)
            np.add(total, self.waiting_context, out=total, where=tail)
            full = np.greater(slots, waiting, out=self._sc_mask2)
            np.add(total, input_len, out=total, where=full)
            np.logical_not(tail, out=tail)
            partial = np.logical_and(
                tail, np.greater(slots, 0, out=self._sc_mask2), out=tail
            )
            if partial.any():
                # Rare same-timestamp race: arrivals queued behind an
                # ADMIT that has not fired yet. Walk the waiting prefix
                # exactly as the scalar probe does.
                replicas = self._replicas
                for index in np.nonzero(partial)[0].tolist():
                    open_slots = int(slots[index])
                    prefix = 0
                    for request in replicas[index].waiting:
                        if open_slots == 0:
                            break
                        prefix += request.input_len
                        open_slots -= 1
                    total[index] += prefix
        # max(1, round(total / rlp)), then round to the admission bucket:
        # all values are exact small integers in float64, so staying in
        # float through both roundings is bit-identical to the int64
        # formulation.
        mean = np.divide(total, rlp, out=self._sc_mean)
        np.rint(mean, out=mean)
        np.maximum(mean, 1, out=mean)
        mean /= ADMISSION_CONTEXT_BUCKET
        np.rint(mean, out=mean)
        np.maximum(mean, 1, out=mean)
        ctx_index = self._sc_ctx
        np.copyto(ctx_index, mean, casting="unsafe")
        return rlp, ctx_index

    def fleet_step_seconds(self, request: Request) -> List[float]:
        """Projected next-iteration seconds for every replica.

        Bit-identical lane-for-lane to
        :func:`~repro.cluster.router.projected_step_seconds_fleet` over
        the same replicas: the same projected batch shapes, the same
        pinned-target pricing for misses — only the bookkeeping is
        arrays and dense tables instead of dicts.
        """
        values = self._fleet_step_array(request)
        result = values.tolist()
        self._last_step_array = values
        self._last_step_list = result
        return result

    def _fleet_step_array(self, request: Request) -> np.ndarray:
        """:meth:`fleet_step_seconds` as a float64 array.

        Homogeneous fleets run the incremental path: the cached previous
        probe stays valid lane-for-lane except where an event touched a
        replica (``_probe_dirty``) or the candidate's input length enters
        the projection (``_probe_sensitive``); only those lanes recompute
        — scalar arithmetic identical to the vector passes. Heterogeneous
        fleets (several price groups) take the full vector path.
        """
        self._flush()
        groups = self._groups
        if len(groups) == 1 and groups[0].indices is None:
            values = self._probe_values
            if values is None:
                return self._rebuild_probe(groups[0], request.input_len)
            lanes = self._probe_dirty
            input_len = request.input_len
            if input_len != self._probe_input_len:
                lanes |= self._probe_sensitive
                self._probe_input_len = input_len
            misses = 0
            if lanes:
                if len(lanes) * 4 >= values.shape[0]:
                    # Most of the fleet moved (step burst between two
                    # probes): one vector pass beats a long scalar loop.
                    return self._rebuild_probe(groups[0], input_len)
                misses = self._refresh_lanes(groups[0], lanes, input_len)
                lanes.clear()
            self.misses += misses
            self.hits += values.shape[0] - misses
            return values
        rlp, ctx_index = self._projected_loads(request.input_len)
        tlp = self.current_tlp
        codes = self._plan_codes(rlp, tlp)
        out = np.empty(len(self._replicas), dtype=np.float64)
        for group in groups:
            idx = group.indices
            g_codes = codes[idx]
            g_rlp = rlp[idx]
            g_tlp = tlp[idx]
            g_ctx = ctx_index[idx]
            group.ensure(
                int(g_rlp.max()), int(g_tlp.max()), int(g_ctx.max())
            )
            values = group.table[g_codes, g_rlp, g_tlp, g_ctx]
            missing = np.isnan(values)
            miss_count = int(missing.sum())
            if miss_count:
                self._price_group_misses(
                    group, g_codes, g_rlp, g_tlp,
                    g_ctx * ADMISSION_CONTEXT_BUCKET, values, missing,
                )
                self.misses += miss_count
            self.hits += values.shape[0] - miss_count
            out[idx] = values
        return out

    def _rebuild_probe(self, group: _PriceGroup, input_len: int) -> np.ndarray:
        """Full vector probe that seeds the incremental cache."""
        rlp, ctx_index = self._projected_loads(input_len)
        # ``_projected_loads`` leaves the open-slot counts in its scratch
        # buffer; a lane is input-sensitive exactly when the candidate
        # itself joins the projection (slots > waiting). Snapshot before
        # ``_plan_codes`` reuses the buffers.
        sensitive = np.greater(
            self._sc_slots, self.waiting_count, out=self._sc_mask1
        )
        self._probe_sensitive = set(np.nonzero(sensitive)[0].tolist())
        tlp = self.current_tlp
        codes = self._plan_codes(rlp, tlp)
        group.ensure(self._rlp_cap, int(tlp.max()), int(ctx_index.max()))
        values = group.table[codes, rlp, tlp, ctx_index]
        missing = np.isnan(values)
        miss_count = int(missing.sum())
        if miss_count:
            self._price_group_misses(
                group, codes, rlp, tlp,
                ctx_index * ADMISSION_CONTEXT_BUCKET, values, missing,
            )
            self.misses += miss_count
        self.hits += values.shape[0] - miss_count
        self._probe_values = values
        self._probe_input_len = input_len
        self._probe_dirty.clear()
        return values

    def _refresh_lanes(
        self, group: _PriceGroup, lanes: set, input_len: int
    ) -> int:
        """Recompute the cached probe's stale lanes; returns miss count.

        Scalar twin of one lane of the vector probe: the same projected
        batch shape (``projected_admission_load``'s arithmetic), the same
        two half-even roundings (Python ``round`` == ``np.rint`` on the
        same float64 quotients), the same per-replica placement
        resolution, the same dense table — so a refreshed lane is
        bit-identical to what the full vector pass would produce.
        """
        # Lanes mutate in place, so the identity cache handed to the
        # completion probe is stale from here on.
        self._last_step_list = None
        self._last_step_array = None
        replicas = self._replicas
        table = group.table
        values = self._probe_values
        sensitive = self._probe_sensitive
        bucket = ADMISSION_CONTEXT_BUCKET
        mirror = self._mirror_scheduler
        constant = self._constant_codes
        misses = 0
        for i in lanes:
            replica = replicas[i]
            active = len(replica.active)
            waiting_n = len(replica.waiting)
            rlp = active + waiting_n + 1
            max_batch = replica.max_batch_size
            if rlp > max_batch:
                rlp = max_batch
            slots = rlp - active
            total = replica._active_context_sum
            if slots > waiting_n:
                total += replica._waiting_context_sum + input_len
                sensitive.add(i)
            else:
                sensitive.discard(i)
                if slots == waiting_n:
                    total += replica._waiting_context_sum
                elif slots > 0:
                    # Rare same-timestamp race: arrivals queued behind an
                    # ADMIT that has not fired yet — walk the prefix.
                    for queued in replica.waiting:
                        if slots == 0:
                            break
                        total += queued.input_len
                        slots -= 1
            mean = max(1, round(total / rlp))
            ctx = max(1, round(mean / bucket))
            tlp = replica._current_tlp
            if mirror:
                scheduler = replica.system.scheduler
                target = scheduler.current_target
                if (
                    target is not None
                    and scheduler.rlp == rlp
                    and scheduler.tlp_register.read() == tlp
                ):
                    code = 0 if target is PlacementTarget.PU else 1
                else:
                    code = 1 if rlp * tlp <= replica.system.alpha else 0
            elif constant is not None:
                code = int(constant[i])
            else:
                code = TARGET_CODES[
                    replica.system.plan_fc_target(rlp, tlp)
                ]
            shape = table.shape
            if rlp >= shape[1] or tlp >= shape[2] or ctx >= shape[3]:
                group.ensure(max(rlp, self._rlp_cap), tlp, ctx)
                table = group.table
            value = table[code, rlp, tlp, ctx]
            if value != value:  # NaN: unseen operating point
                value = self._price_lane(group, code, rlp, tlp, ctx)
                misses += 1
            values[i] = value
        return misses

    def _price_lane(
        self, group: _PriceGroup, code: int, rlp: int, tlp: int, ctx: int
    ) -> float:
        """Price one unseen operating point (the incremental miss path).

        The one-lane case of :meth:`_price_group_misses`: the same
        pinned-target :func:`price_steps_at` call over a one-point grid.
        """
        representative = group.representative
        grid = build_step_grid(
            representative.model,
            [rlp],
            [tlp],
            [ctx * ADMISSION_CONTEXT_BUCKET],
            moe=representative.moe,
        )
        priced = price_steps_at(
            representative.system, grid, (CODE_TARGETS[code],)
        )
        value = float(priced.seconds[0])
        group.table[code, rlp, tlp, ctx] = value
        group.entries += 1
        return value

    def _plan_codes(self, rlp: np.ndarray, tlp: np.ndarray) -> np.ndarray:
        """Every lane's planned FC placement code for a probe's loads.

        FC placement is per-replica *state* (PAPI's standing decision can
        lag the stateless rule right after a TLP register write), so each
        lane resolves against its own replica's scheduler — as array
        arithmetic over the mirrored scheduler state when the fleet's
        planners are recognized (:data:`_PLAN_KINDS`), through each
        replica's ``plan_fc_target`` otherwise (the reference probes'
        exact discipline either way).
        """
        if self._mirror_scheduler:
            sched_code = self._sched_code
            standing = np.greater_equal(sched_code, 0, out=self._sc_mask1)
            np.logical_and(
                standing,
                np.equal(rlp, self._sched_rlp, out=self._sc_mask2),
                out=standing,
            )
            np.logical_and(
                standing,
                np.equal(tlp, self._sched_tlp, out=self._sc_mask2),
                out=standing,
            )
            if standing.all():
                # Steady state: every lane's projection matches its
                # scheduler's standing decision — the mirror array *is*
                # the answer (callers only read it).
                return self._sched_code
            # Formula lanes: FC_PIM (code 1) iff rlp * tlp <= alpha.
            estimate = np.multiply(rlp, tlp, out=self._sc_slots)
            formula = np.less_equal(estimate, self._alpha, out=self._sc_mask2)
            codes = self._sc_codes
            np.copyto(codes, formula, casting="unsafe")
            np.copyto(codes, sched_code, where=standing)
            return codes
        if self._constant_codes is not None:
            return self._constant_codes
        replicas = self._replicas
        rlp_list = rlp.tolist()
        tlp_list = tlp.tolist()
        codes = np.empty(len(replicas), dtype=np.int64)
        for i, replica in enumerate(replicas):
            codes[i] = TARGET_CODES[
                replica.system.plan_fc_target(rlp_list[i], tlp_list[i])
            ]
        return codes

    def _price_group_misses(
        self,
        group: _PriceGroup,
        g_codes: np.ndarray,
        g_rlp: np.ndarray,
        g_tlp: np.ndarray,
        g_bucketed: np.ndarray,
        values: np.ndarray,
        missing: np.ndarray,
    ) -> None:
        """Price a probe's unseen operating points and fill the table.

        Identical projections collapse to one grid lane; lanes are priced
        in a single pinned-target :func:`price_steps_at` call — the exact
        call the fleet-batched reference path makes for its misses, with
        each lane's FC target pinned to what its replica planned.
        """
        lanes: Dict[Tuple[int, int, int, int], List[int]] = {}
        for position in np.nonzero(missing)[0].tolist():
            key = (
                int(g_codes[position]),
                int(g_rlp[position]),
                int(g_tlp[position]),
                int(g_bucketed[position]),
            )
            lanes.setdefault(key, []).append(position)
        representative = group.representative
        keys = list(lanes)
        targets = tuple(CODE_TARGETS[key[0]] for key in keys)
        grid = build_step_grid(
            representative.model,
            [key[1] for key in keys],
            [key[2] for key in keys],
            [key[3] for key in keys],
            moe=representative.moe,
        )
        priced = price_steps_at(representative.system, grid, targets)
        table = group.table
        bucket = ADMISSION_CONTEXT_BUCKET
        for lane, key in enumerate(keys):
            value = float(priced.seconds[lane])
            table[key[0], key[1], key[2], key[3] // bucket] = value
            for position in lanes[key]:
                values[position] = value
        group.entries += len(keys)

    def fleet_completion_seconds(
        self,
        request: Request,
        step_seconds: Optional[Sequence[float]] = None,
    ) -> List[float]:
        """Projected completion seconds for every replica.

        Bit-identical lane-for-lane to
        :func:`~repro.cluster.router.projected_completion_seconds_fleet`:
        the same ceil / backlog-drain arithmetic, elementwise.
        """
        if step_seconds is None:
            steps = self._fleet_step_array(request)
        elif step_seconds is self._last_step_list:
            # The admission controller (and the slo-slack router) hand
            # back the exact list the step probe just returned; reuse its
            # array twin instead of re-converting.
            steps = self._last_step_array
        else:
            steps = np.asarray(step_seconds, dtype=np.float64)
        self._flush()
        per_iteration = np.add(steps, self.draft_overhead, out=self._sc_per)
        own = np.divide(
            request.output_len, self.expected_tokens, out=self._sc_own
        )
        np.ceil(own, out=own)
        backlog = np.divide(
            self.remaining_tokens, self._drain_denominator,
            out=self._sc_backlog,
        )
        np.add(own, backlog, out=own)
        np.multiply(own, per_iteration, out=own)
        return own.tolist()

    # -- version-keyed verdict memos (arrival-run coalescing) --------------

    #: Residency bound on each verdict memo. Distinct keys per version
    #: are naturally few (a handful of input-length buckets); the cap is
    #: a backstop against pathological traces, and clearing a memo can
    #: only cost recomputation, never correctness.
    VERDICT_MEMO_ENTRIES = 1 << 13

    def _sync_memo(self) -> None:
        """Drop every memoized verdict older than the current version."""
        if self._memo_version != self.version:
            self._steps_memo.clear()
            self._completion_memo.clear()
            self._order_memo.clear()
            self._per_memo.clear()
            self._backlog_cache = None
            self._memo_version = self.version

    def _steps_key(self, input_len: int) -> int:
        """The plan-group key a probe's step vector depends on.

        A probe reads the candidate's ``input_len`` only through lanes
        whose projection includes the candidate itself (``slots >
        waiting`` — the ``_probe_sensitive`` set, a pure function of
        fleet state and therefore fixed per version). A saturated
        homogeneous fleet has no such lane, so every input length maps to
        one shared key (``-1``) — the case deferral storms live in.
        Valid only after at least one probe ran at the current version
        (memos are cleared on every bump, so a non-empty memo implies the
        sensitive set reflects the current state).
        """
        if self._homogeneous and not self._probe_sensitive:
            return -1
        return input_len

    def probe_steps(self, request: Request) -> np.ndarray:
        """Version-memoized whole-fleet step vector.

        A hit returns the prior probe's array with zero recomputation; a
        miss runs :meth:`_fleet_step_array` (incremental per-lane refresh
        underneath) and memoizes a copy, so later in-place lane refreshes
        for a *different* input length can never corrupt this entry.
        Bit-identical either way: within one version no counter a probe
        reads has changed, so a recompute would reproduce the exact same
        floats.
        """
        self._sync_memo()
        memo = self._steps_memo
        if memo:
            values = memo.get(self._steps_key(request.input_len))
            if values is not None:
                self.probe_hits += 1
                return values
        self.probe_misses += 1
        values = self._fleet_step_array(request).copy()
        if len(memo) >= self.VERDICT_MEMO_ENTRIES:
            memo.clear()
        memo[self._steps_key(request.input_len)] = values
        return values

    def _steps_for(self, request: Request) -> np.ndarray:
        """:meth:`probe_steps` without touching the query counters.

        For internal second reads inside one logical query (the slack
        router needs both the completion vector and the step vector):
        the query already counted once, so this lookup must not.
        """
        memo = self._steps_memo
        if memo:
            values = memo.get(self._steps_key(request.input_len))
            if values is not None:
                return values
        values = self._fleet_step_array(request).copy()
        if len(memo) >= self.VERDICT_MEMO_ENTRIES:
            memo.clear()
        memo[self._steps_key(request.input_len)] = values
        return values

    def probe_min_batch(
        self, requests: Sequence[Request]
    ) -> Optional[np.ndarray]:
        """Best projected completions for a slice of arrivals, one pass.

        The arrival-run coalescing fast path: every member is priced
        against the *current* fleet version, whose projections differ
        across members only through ``output_len`` when no lane is
        input-sensitive. One ``(members, replicas)`` broadcast of the
        completion arithmetic — the same elementwise op sequence as
        :meth:`probe_completions`, so row ``j`` is bit-identical to the
        scalar probe for member ``j`` — prices the whole slice; the
        row-wise minimum is exactly what :meth:`probe_min_completion`
        would return member by member. Returns ``None`` when members'
        step vectors could differ (input-sensitive lanes, heterogeneous
        fleet); callers fall back to the per-member probe. Counts one
        query (the shared step-vector lookup) per call — the caller
        counts a hit for each *additional* row it later serves.
        """
        self._sync_memo()
        if self._steps_memo and (
            not self._homogeneous or self._probe_sensitive
        ):
            # A probe already ran at this version, so the sensitivity
            # set is current: bail before doing any projection work.
            return None
        steps = self.probe_steps(requests[0])
        if not self._homogeneous or self._probe_sensitive:
            return None
        per_iteration = self._per_memo.get(-1)
        if per_iteration is None:
            per_iteration = np.add(steps, self.draft_overhead)
            self._per_memo[-1] = per_iteration
        backlog = self._backlog_cache
        if backlog is None:
            backlog = self._backlog_cache = np.divide(
                self.remaining_tokens, self._drain_denominator
            )
        outputs = np.array(
            [request.output_len for request in requests], dtype=np.int64
        )
        grid = np.divide(outputs[:, None], self.expected_tokens)
        np.ceil(grid, out=grid)
        np.add(grid, backlog, out=grid)
        np.multiply(grid, per_iteration, out=grid)
        return grid.min(axis=1)

    def probe_completions(self, request: Request) -> Tuple[np.ndarray, float]:
        """Version-memoized ``(completion vector, minimum)`` pair.

        The completion arithmetic is exactly
        :meth:`fleet_completion_seconds`'s (same elementwise ops, same
        scratch discipline); the memo key extends the step key with the
        candidate's ``output_len`` (the only other request field the
        projection reads). The cached minimum equals ``min()`` over the
        probe's list form — one float compared bit-for-bit by the
        admission controller.
        """
        self._sync_memo()
        memo = self._completion_memo
        if memo:
            entry = memo.get(
                (self._steps_key(request.input_len), request.output_len)
            )
            if entry is not None:
                self.probe_hits += 1
                return entry
        # The query counts exactly once — through the step-vector lookup
        # below (hit when the probe vector was reused and only the four
        # elementwise completion passes ran, miss when the whole fleet
        # probe recomputed).
        steps = self.probe_steps(request)
        key = self._steps_key(request.input_len)
        # ``per_iteration`` and ``backlog`` are request-independent (per
        # steps key / per version respectively): compute each once per
        # frozen-version segment and let every distinct output length in
        # the segment reuse them — the same float64 operands the
        # unshared pipeline would rebuild, so results are bit-identical.
        per_iteration = self._per_memo.get(key)
        if per_iteration is None:
            per_iteration = np.add(steps, self.draft_overhead)
            self._per_memo[key] = per_iteration
        backlog = self._backlog_cache
        if backlog is None:
            backlog = self._backlog_cache = np.divide(
                self.remaining_tokens, self._drain_denominator
            )
        completions = np.divide(request.output_len, self.expected_tokens)
        np.ceil(completions, out=completions)
        np.add(completions, backlog, out=completions)
        np.multiply(completions, per_iteration, out=completions)
        entry = (completions, float(completions.min()))
        if len(memo) >= self.VERDICT_MEMO_ENTRIES:
            memo.clear()
        memo[(key, request.output_len)] = entry
        return entry

    def probe_min_completion(self, request: Request) -> float:
        """The admission controller's fast path: best projected completion.

        Equals ``min(fleet_completion_seconds(request, steps))`` — the
        value the batched reference compares against the deadline — via
        the version memo. The hit path is hand-inlined (version check,
        steps key, one dict probe): deferral storms take it millions of
        times per trace, so every avoided method call is wall-clock.
        """
        if self._memo_version != self.version:
            self._sync_memo()
        memo = self._completion_memo
        if memo:
            key = (
                -1
                if (self._homogeneous and not self._probe_sensitive)
                else request.input_len
            )
            entry = memo.get((key, request.output_len))
            if entry is not None:
                self.probe_hits += 1
                return entry[1]
        return self.probe_completions(request)[1]

    def _cost_order(self, request: Request, steps: np.ndarray) -> np.ndarray:
        """Replica indices by (step cost, outstanding, index), memoized.

        ``np.lexsort`` is stable with the last key primary, so the order
        ranks exactly the reference tuple-min criterion; ``steps`` must
        come from :meth:`probe_steps` at the current version (which also
        makes the memo key valid).
        """
        memo = self._order_memo
        key = self._steps_key(request.input_len)
        order = memo.get(key)
        if order is None:
            order = np.lexsort((self.outstanding_counts(), steps))
            if len(memo) >= self.VERDICT_MEMO_ENTRIES:
                memo.clear()
            memo[key] = order
        return order

    def route_min_cost(self, request: Request) -> int:
        """The min-cost router's verdict via the version memo.

        Identical to ``lexsort((outstanding, costs))[0]`` over the fleet
        probe — the reference numpy branch — with both the step vector
        and the sorted order reused while the version holds still.
        """
        self._sync_memo()
        steps = self.probe_steps(request)
        return int(self._cost_order(request, steps)[0])

    def route_slo_slack(self, request: Request, now: float) -> int:
        """The slo-slack router's verdict via the version memos.

        Best-effort requests degrade to :meth:`route_min_cost` exactly as
        the reference does. Deadline requests recompute only the slack —
        elementwise ``deadline - (now + c)``, never algebraically
        rearranged, so feasibility tests see bit-identical floats — and
        reuse the memoized cost order: the first feasible index in the
        global (cost, outstanding, index) order is precisely the
        feasible-subset lexsort winner (stability), so the verdict
        matches the reference branch for branch. The all-infeasible
        fallback (reachable only for deadline traffic that bypassed
        admission) ranks by most slack exactly as the reference.
        """
        deadline = request.deadline_s
        if deadline is None:
            return self.route_min_cost(request)
        self._sync_memo()
        completions, _ = self.probe_completions(request)
        steps = self._steps_for(request)
        slack = np.add(completions, now, out=self._sc_slack)
        np.subtract(deadline, slack, out=slack)
        feasible = np.greater_equal(slack, 0.0, out=self._sc_mask1)
        if feasible.any():
            order = self._cost_order(request, steps)
            return int(order[int(np.argmax(feasible[order]))])
        counts = self.outstanding_counts()
        return int(np.lexsort((counts, steps, np.negative(slack)))[0])

    def price_run(self, requests: Sequence[Request]) -> int:
        """Warm the dense price tables for a run of arrivals in one pass.

        For every distinct input length in the run, project the fleet's
        post-admission loads and collect the table points no probe has
        priced yet; all missing points are then priced through a *single*
        pinned-target :func:`price_steps_at` call per price group (table
        entries are pure functions of their key, so prefetching ahead of
        the member-by-member admission decisions is always sound — an
        admit between members only changes *which* keys later members
        look up, and those recompute through the incremental lane
        refresh). Returns the number of newly priced operating points.
        """
        self._flush()
        groups = self._groups
        pending: List[Dict[Tuple[int, int, int, int], None]] = [
            {} for _ in groups
        ]
        seen: set = set()
        for request in requests:
            input_len = request.input_len
            if input_len in seen:
                continue
            seen.add(input_len)
            rlp, ctx_index = self._projected_loads(input_len)
            # ``_projected_loads`` leaves the open-slot counts in its
            # scratch; when no lane projects the candidate itself
            # (saturated fleet), every input length shares one
            # projection — one pass covers the whole run.
            input_sensitive = bool(
                np.greater(
                    self._sc_slots, self.waiting_count, out=self._sc_mask1
                ).any()
            )
            tlp = self.current_tlp
            codes = self._plan_codes(rlp, tlp)
            for position, group in enumerate(groups):
                idx = group.indices
                if idx is None:
                    g_codes, g_rlp, g_tlp, g_ctx = codes, rlp, tlp, ctx_index
                else:
                    g_codes = codes[idx]
                    g_rlp = rlp[idx]
                    g_tlp = tlp[idx]
                    g_ctx = ctx_index[idx]
                group.ensure(
                    int(g_rlp.max()), int(g_tlp.max()), int(g_ctx.max())
                )
                values = group.table[g_codes, g_rlp, g_tlp, g_ctx]
                missing = np.isnan(values)
                if missing.any():
                    want = pending[position]
                    for lane in np.nonzero(missing)[0].tolist():
                        want[
                            (
                                int(g_codes[lane]),
                                int(g_rlp[lane]),
                                int(g_tlp[lane]),
                                int(g_ctx[lane]),
                            )
                        ] = None
            if not input_sensitive:
                break
        priced_points = 0
        for group, want in zip(groups, pending):
            if not want:
                continue
            keys = list(want)
            representative = group.representative
            grid = build_step_grid(
                representative.model,
                [key[1] for key in keys],
                [key[2] for key in keys],
                [key[3] * ADMISSION_CONTEXT_BUCKET for key in keys],
                moe=representative.moe,
            )
            priced = price_steps_at(
                representative.system,
                grid,
                tuple(CODE_TARGETS[key[0]] for key in keys),
            )
            table = group.table
            for lane, key in enumerate(keys):
                table[key[0], key[1], key[2], key[3]] = float(
                    priced.seconds[lane]
                )
            group.entries += len(keys)
            priced_points += len(keys)
        return priced_points

    # -- reporting ---------------------------------------------------------

    def price_stats(self) -> Dict[str, float]:
        """Probe-table counters, shaped like the price cache's stats."""
        total = self.hits + self.misses
        entries = sum(group.entries for group in self._groups)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "systems": len(self._groups),
            "entries": entries,
            "max_entries": entries,
        }

    def memo_stats(self) -> Dict[str, float]:
        """Verdict-memo effectiveness counters for the cluster report.

        ``probe_hits`` / ``probe_misses`` count *queries* — admission
        probes and routing verdicts — exactly once each: a miss is a
        query that recomputed the whole-fleet probe vector, a hit is one
        answered from the version-keyed memos (a cached verdict, a
        batch-priced row, or a verdict assembled from the memoized probe
        vector and segment factors). ``runs_coalesced`` counts
        multi-arrival runs the simulator drained in one slice;
        ``version_bumps`` is the fleet version itself — one bump per
        router-visible state change.
        """
        total = self.probe_hits + self.probe_misses
        return {
            "probe_hits": self.probe_hits,
            "probe_misses": self.probe_misses,
            "hit_rate": self.probe_hits / total if total else 0.0,
            "runs_coalesced": self.runs_coalesced,
            "version_bumps": self.version,
        }
