"""Multi-replica cluster serving: routing, admission, event simulation.

Shards traffic across N independent :class:`~repro.systems.base.ServingSystem`
replicas under a pluggable routing policy, on one discrete-event timeline
(see :mod:`repro.serving.clock`). The cluster — not a single engine loop —
is the unit of evaluation: per-replica utilization, FC-migration counts,
pooled p50/p99 arrival-to-``<eos>`` latency, and per-tenant SLO attainment
come out of one run. Multi-tenant traffic adds an optional SLO-aware
admission controller (reject/defer when a tenant's p99 budget is at risk)
and the deadline-slack router.

Quickstart::

    from repro import build_system, get_model, sample_requests
    from repro.cluster import ClusterSimulator, Replica, build_router
    from repro.serving.arrivals import poisson_arrivals

    model = get_model("llama-65b")
    replicas = [
        Replica(i, build_system("papi"), model, max_batch_size=16)
        for i in range(4)
    ]
    requests = poisson_arrivals(
        sample_requests("creative-writing", 64), rate_per_s=32.0
    )
    summary = ClusterSimulator(replicas, build_router("intensity")).run(requests)
    print(summary.latency_percentile(99), summary.total_reschedules)

For the declarative path — one JSON-serializable spec describing fleet,
tenants, SLOs, and routing — see :mod:`repro.scenario`.
"""

from repro.cluster.admission import (
    ADMISSION_ACTIONS,
    AdmissionDecision,
    SLOAdmissionController,
    TenantPolicy,
)
from repro.cluster.cluster import (
    ClusterSimulator,
    ClusterSummary,
    ReplicaReport,
    TenantReport,
)
from repro.cluster.prefixcache import PrefixCache
from repro.cluster.replica import Replica
from repro.cluster.router import (
    IntensityAwareRouter,
    LeastOutstandingRouter,
    MinCostRouter,
    PriceCache,
    RoundRobinRouter,
    Router,
    SessionAffinityRouter,
    SLOSlackRouter,
    available_routers,
    build_router,
    projected_completion_seconds,
    projected_step_seconds,
)

__all__ = [
    "ADMISSION_ACTIONS",
    "AdmissionDecision",
    "ClusterSimulator",
    "ClusterSummary",
    "IntensityAwareRouter",
    "LeastOutstandingRouter",
    "MinCostRouter",
    "PrefixCache",
    "PriceCache",
    "Replica",
    "ReplicaReport",
    "RoundRobinRouter",
    "Router",
    "SLOAdmissionController",
    "SLOSlackRouter",
    "SessionAffinityRouter",
    "TenantPolicy",
    "TenantReport",
    "available_routers",
    "build_router",
    "projected_completion_seconds",
    "projected_step_seconds",
]
