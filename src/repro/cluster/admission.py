"""SLO-aware admission control for multi-tenant cluster serving.

The ROADMAP's multi-tenant SLO item: each tenant carries a per-request
latency budget (stamped on its requests as an absolute ``deadline_s``),
and the cluster may *reject* or *defer* an arriving request when its
projected completion would blow that budget — protecting the tenant's
p99 instead of letting an overloaded fleet absorb every arrival and miss
everyone's deadline.

The projection reuses the routers' vectorized admission price
(:func:`~repro.cluster.router.projected_step_seconds`, by way of
:func:`~repro.cluster.router.projected_completion_seconds`): the
controller asks every replica for the request's projected completion and
admits when the *best* replica still meets the deadline. Deferral pushes
the arrival back by a fixed backoff a bounded number of times — useful
under bursty load where the backlog drains quickly — after which the
request is rejected rather than deferred forever.

Requests without a deadline, and tenants whose policy is ``admit``, pass
through untouched, so single-tenant runs behave exactly as before the
controller existed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.cluster.replica import Replica
from repro.cluster.router import (
    PriceCache,
    best_decode_completion_seconds,
    projected_completion_seconds,
    projected_completion_seconds_fleet,
    projected_prefill_completion_seconds,
    projected_step_seconds_fleet,
)
from repro.errors import ConfigurationError
from repro.serving.request import Request

#: What a tenant policy may do with an at-risk request.
ADMISSION_ACTIONS = ("admit", "reject", "defer")


class AdmissionDecision(enum.Enum):
    """Outcome of one admission-control consultation."""

    ADMIT = "admit"
    REJECT = "reject"
    DEFER = "defer"


@dataclass(frozen=True)
class TenantPolicy:
    """How one tenant's at-risk arrivals are handled.

    Attributes:
        action: ``admit`` (no control), ``reject`` (drop at-risk
            arrivals), or ``defer`` (retry later, bounded).
        defer_seconds: Backoff before a deferred request re-arrives.
        max_defers: Deferrals allowed per request before it is rejected.
    """

    action: str = "admit"
    defer_seconds: float = 0.5
    max_defers: int = 4

    def __post_init__(self) -> None:
        if self.action not in ADMISSION_ACTIONS:
            known = ", ".join(ADMISSION_ACTIONS)
            raise ConfigurationError(
                f"unknown admission action {self.action!r}; known: {known}"
            )
        if self.defer_seconds <= 0:
            raise ConfigurationError("defer_seconds must be positive")
        if self.max_defers < 0:
            raise ConfigurationError("max_defers must be non-negative")


class PathProber:
    """Completion projection across a disaggregated fleet's full path.

    The admission controller's fleet view for prefill/decode pools: it
    quacks like a fleet with a ``probe_min_completion`` verdict, but the
    projection spans the whole handoff — the best prefill pool
    arrival-to-first-token estimate, plus the KV transfer of the
    request's first-token context, plus the best completion the decode
    pool offers. The decode term delegates to
    :func:`~repro.cluster.router.best_decode_completion_seconds`, so a
    vectorized decode pool answers from its per-pool verdict memo and a
    scalar pool from per-replica projections — bit-identical either way.

    Args:
        prefill_pool: The fleet's prefill replicas.
        decode_pool: The decode replicas (a list or a
            :class:`~repro.cluster.fleetstate.FleetState`).
        interconnect: The KV-transfer cost model
            (:class:`~repro.cluster.interconnect.Interconnect`).
        price_cache: The shared router/admission price memo.
        batched: Probe the decode pool fleet-batched (see
            :class:`SLOAdmissionController`); projections are
            bit-identical either way.
    """

    def __init__(
        self,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
        price_cache: Optional[PriceCache] = None,
        batched: bool = True,
    ) -> None:
        self.prefill_pool = prefill_pool
        self.decode_pool = decode_pool
        self.interconnect = interconnect
        self.price_cache = price_cache
        self.batched = batched

    def probe_min_completion(self, request: Request) -> float:
        """Earliest projected arrival-to-``<eos>`` across the full path."""
        best_prefill = min(
            projected_prefill_completion_seconds(
                replica, request, self.price_cache
            )
            for replica in self.prefill_pool
        )
        transfer = self.interconnect.transfer_seconds(request.input_len + 1)
        best_decode = best_decode_completion_seconds(
            self.decode_pool,
            request,
            self.price_cache,
            batched=self.batched,
        )
        return best_prefill + transfer + best_decode


class SLOAdmissionController:
    """Gates arrivals on each tenant's projected p99-budget risk.

    Args:
        policies: Tenant name -> :class:`TenantPolicy`. Tenants absent
            from the mapping are always admitted.
        price_cache: Admission-price memo to use. Pass the routing
            policy's own cache (when it keeps one) so the controller and
            router price each distinct operating point once between them;
            ``None`` allocates a private cache.
        max_cache_entries: Bound on a privately allocated cache.
        batched: Price the whole fleet's completion projections in one
            fleet-batched pass per consultation (see
            :func:`~repro.cluster.router.projected_completion_seconds_fleet`)
            instead of one scalar probe per replica. Decisions are
            bit-identical either way.
    """

    def __init__(
        self,
        policies: Mapping[str, TenantPolicy],
        price_cache: Optional[PriceCache] = None,
        max_cache_entries: int = 4096,
        batched: bool = True,
    ) -> None:
        self.policies = dict(policies)
        self.batched = batched
        self._price_cache = (
            price_cache if price_cache is not None
            else PriceCache(max_cache_entries, share_equal_systems=batched)
        )
        self._defers_used: Dict[int, int] = {}

    @property
    def price_cache(self) -> PriceCache:
        """The admission-price memo (shared with the router when wired)."""
        return self._price_cache

    def decide(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> Tuple[AdmissionDecision, float]:
        """Admit, reject, or defer ``request`` at simulated time ``now``.

        Returns:
            The decision and, for ``DEFER``, the backoff in seconds
            before the request should re-arrive (0.0 otherwise).
        """
        policy = self.policies.get(request.tenant)
        if (
            policy is None
            or policy.action == "admit"
            or request.deadline_s is None
        ):
            return AdmissionDecision.ADMIT, 0.0
        probe = getattr(replicas, "probe_min_completion", None)
        if probe is not None:
            # Vectorized fleets answer from the fleet-version verdict
            # memo (bit-identical to min() over the fleet completion
            # probe, O(1) while no router-visible state changed — which
            # also covers the router's select() on this same arrival,
            # so no per-arrival handoff memo is needed), and
            # disaggregated fleets from the :class:`PathProber`'s
            # cross-handoff projection. Both are pinned identical to
            # their scalar counterparts, so the check precedes the
            # ``batched`` split.
            projected = probe(request)
        elif self.batched:
            steps = projected_step_seconds_fleet(
                replicas, request, self._price_cache
            )
            completions = projected_completion_seconds_fleet(
                replicas, request, self._price_cache, step_seconds=steps
            )
            # Hand this arrival's projections to the router: if the
            # request is admitted, select() runs next against
            # identical replica state and reuses them instead of
            # re-probing.
            self._price_cache.fleet_memo = (
                replicas, request, now, steps, completions
            )
            projected = min(completions)
        else:
            projected = min(
                projected_completion_seconds(
                    replica, request, self._price_cache
                )
                for replica in replicas
            )
        if now + projected <= request.deadline_s:
            return AdmissionDecision.ADMIT, 0.0
        if policy.action == "defer":
            used = self._defers_used.get(request.request_id, 0)
            if used < policy.max_defers:
                self._defers_used[request.request_id] = used + 1
                return AdmissionDecision.DEFER, policy.defer_seconds
        return AdmissionDecision.REJECT, 0.0
