"""Pluggable request-routing policies for multi-replica serving.

The router is the cluster's admission-control brain: every arriving
request is assigned to exactly one replica, and the choice shapes both
tail latency (load balance) and scheduler behavior (how often each
replica's FC placement migrates between PUs and FC-PIM).

Six policies:

* **round-robin** — classic stateless spreading; the baseline every
  serving stack ships.
* **least-outstanding** — route to the replica with the fewest queued +
  active requests; the standard load-aware heuristic.
* **intensity** — parallelism-aware routing built on the PAPI scheduler's
  load signal (:class:`~repro.core.scheduler.LoadSignal`): prefer
  replicas whose projected ``RLP * TLP`` stays on the same side of the
  calibrated ``alpha`` crossover after admission, so batches sit firmly
  on one FC placement instead of hovering at the boundary and thrashing
  between PUs and FC-PIM as runtime RLP decays. Replicas without a load
  signal are ranked by projected admission cost (below).
* **min-cost** — price-aware routing for heterogeneous fleets: every
  replica's post-admission decoding step is priced through the
  vectorized :meth:`~repro.systems.base.ServingSystem.price_steps` path
  and the request goes to the replica whose next iteration stays
  cheapest. Because each system prices itself, a single cluster can mix
  PAPI replicas with GPU-only or PIM-only ones and the router stays
  meaningful — the paper's fixed-platform assumption is not baked in.
* **slo-slack** — min-cost extended with deadline slack for multi-tenant
  SLO traffic: requests carrying a deadline are routed to the cheapest
  replica that still meets it (most-slack when none can), while
  best-effort requests fall through to plain min-cost.
* **session-affinity** — slo-slack extended with prefix-cache locality
  for session workloads: a session's follow-up turns prefer the replica
  whose cache holds their prefix, as long as its projected cost stays
  within a tolerance of the fleet minimum (and any deadline still
  holds); non-session traffic routes exactly as slo-slack.
"""

from __future__ import annotations

import abc
import math
from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.cluster.replica import Replica
from repro.errors import ConfigurationError
from repro.models.workload import build_step_grid
from repro.serving.request import Request
from repro.serving.stepcache import SystemScopedCache
from repro.systems.batch import price_steps_at

#: Context quantization for admission pricing: coarse enough that
#: consecutive arrivals projecting near-identical batches share one
#: cached price, fine enough that it never flips a routing decision the
#: cost model could defend (same bucket the design-space sweeps use).
ADMISSION_CONTEXT_BUCKET = 32

#: An admission-price key within one system's scope:
#: (workload name, fc target, rlp, tlp, bucketed context). The scalar
#: path keys the placement enum member; the fleet-batched path keys its
#: ``value`` string (whose hash is cached) — the two shapes can never
#: collide, and each path is self-consistent.
PriceKey = Tuple[str, object, int, int, int]


class PriceCache(SystemScopedCache):
    """Bounded LRU of projected admission prices, scoped per system.

    :class:`~repro.serving.stepcache.SystemScopedCache` specialized to
    the router hot path: long traces with decaying batches and varied
    context buckets touch an unbounded number of distinct operating
    points, so a plain dict memo grows for the whole run — this cache
    caps residency at ``max_entries`` per system, purges a system's
    entries when it is garbage-collected (so a recycled id can never
    serve another system's prices, e.g. when one router instance outlives
    a cluster run), and keeps the hit/miss counters the cluster report
    surfaces.

    ``fleet_memo`` carries the *current arrival's* fleet probe from the
    admission controller to the router: within one ``ARRIVAL`` event the
    controller decides first and the router selects second against
    byte-for-byte identical replica state, so the controller's
    (step, completion) projections can be reused verbatim instead of
    re-probing the fleet. The memo is only honored for the same request
    *object*, the same simulated instant, and the same replica list (see
    :func:`fleet_probe_memo`), which makes staleness structurally
    impossible: any intervening event changes at least one of the three.
    """

    def __init__(
        self, max_entries: int = 4096, share_equal_systems: bool = False
    ) -> None:
        super().__init__(max_entries, share_equal_systems)
        self.fleet_memo: Optional[tuple] = None


def fleet_probe_memo(
    cache: Optional[PriceCache],
    replicas: Sequence[Replica],
    request: Request,
    now: float,
) -> Optional[Tuple[List[float], List[float]]]:
    """The admission controller's fleet probe for this exact arrival.

    Returns ``(step_seconds, completion_seconds)`` lists when ``cache``
    holds a memo for the same request object, instant, and replica list;
    ``None`` otherwise.
    """
    if cache is None or cache.fleet_memo is None:
        return None
    memo_replicas, memo_request, memo_now, steps, completions = cache.fleet_memo
    if (
        memo_request is request
        and memo_now == now
        and memo_replicas is replicas
    ):
        return steps, completions
    return None


def projected_step_seconds(
    replica: Replica, request: Request, cache: Optional[PriceCache] = None
) -> float:
    """Projected next-iteration seconds if ``request`` joins ``replica``.

    Builds the hypothetical post-admission batch — active requests, then
    FIFO-queued ones, then the candidate, truncated to the replica's
    batch slots so only requests that could actually compose the next
    decode batch shape the projection — and prices one decoding step at
    the batch's (bucketed) mean context through the system's vectorized
    pricing path. This is the admission-cost signal heterogeneous fleets
    route on: each replica's own cost model answers, so a GPU-only
    system reports its launch-overhead-heavy low-batch cost, a PIM
    system its bandwidth-bound high-batch cost.

    ``cache`` memoizes prices per (system, workload, FC placement, RLP,
    TLP, bucketed context); routers pass their per-instance
    :class:`PriceCache` so the hot per-arrival path prices each distinct
    operating point once, with bounded residency across long traces. The
    planned placement is part of the key (mirroring the step-cost
    cache), so a PAPI scheduler's standing decision can never serve a
    stale price. MoE replicas price (and key) the routed expert FFN, so
    a mixed MoE + dense fleet routes on each replica's true cost.
    """
    rlp = min(replica.outstanding() + 1, replica.max_batch_size)
    contexts = replica.outstanding_context_lens()
    contexts.append(request.input_len)
    contexts = contexts[:rlp]
    mean_context = max(1, round(sum(contexts) / len(contexts)))
    bucket = ADMISSION_CONTEXT_BUCKET
    mean_context = max(bucket, round(mean_context / bucket) * bucket)
    tlp = replica.current_tlp
    system = replica.system
    if cache is not None:
        key = (
            replica.workload_name,
            system.plan_fc_target(rlp, tlp),
            rlp,
            tlp,
            mean_context,
        )
        cached = cache.get(system, key)
        if cached is not None:
            return cached
    grid = build_step_grid(
        replica.model, [rlp], [tlp], [mean_context], moe=replica.moe
    )
    seconds = float(system.price_steps(grid).seconds[0])
    if cache is not None:
        cache.put(system, key, seconds)
    return seconds


def projected_step_seconds_fleet(
    replicas: Sequence[Replica],
    request: Request,
    cache: Optional[PriceCache] = None,
) -> List[float]:
    """Projected next-iteration seconds for every replica, in one pass.

    The fleet-batched twin of :func:`projected_step_seconds`, and the
    per-arrival hot path of the price-aware routers and the admission
    controller: each replica's post-admission batch shape comes from its
    O(1) load counters (:meth:`Replica.projected_admission_load`), cache
    hits are answered immediately, and the *misses* are grouped by
    interchangeable pricing — same workload, configuration-equal system
    (the shared cache's scope, see
    :meth:`~repro.serving.stepcache.SystemScopedCache.scope_key`) — and
    priced in one pinned-target
    :func:`~repro.systems.batch.price_steps_at` call per group instead of
    one ``price_steps`` trip per replica. Every returned lane is
    bit-identical to ``projected_step_seconds(replica, request, cache)``:
    the same key, the same grid point, the same arithmetic — only the
    batching differs.

    When ``replicas`` is a :class:`~repro.cluster.fleetstate.FleetState`
    (the vectorized core's array-backed fleet view), the probe forwards
    to its :meth:`~repro.cluster.fleetstate.FleetState.fleet_step_seconds`
    — the same projections and the same pinned-target pricing, computed
    as fleet-wide array operations against dense price tables.
    """
    fleet = getattr(replicas, "fleet_step_seconds", None)
    if fleet is not None:
        return fleet(request)
    bucket = ADMISSION_CONTEXT_BUCKET
    input_len = request.input_len
    seconds: List[Optional[float]] = [None] * len(replicas)
    keys: List[Optional[PriceKey]] = [None] * len(replicas)
    targets: List[object] = [None] * len(replicas)
    # Miss groups: scope id -> (representative replica, [replica index]).
    groups: Dict[object, Tuple[Replica, List[int]]] = {}
    # This loop runs replicas x arrivals times; the cache is consulted
    # through its scope map directly (hit/miss tallies folded in below)
    # rather than per-probe get() calls, and keys carry the placement's
    # *value* string (cached hash) instead of the enum member. Hits skip
    # the LRU recency bump — eviction order is a cache-quality knob,
    # never a result.
    if cache is not None:
        scope_of = cache.scope_key
        entries_of = cache._per_system.get
    hits = 0
    misses = 0
    for index, replica in enumerate(replicas):
        rlp, mean_context = replica.projected_admission_load(input_len)
        mean_context = max(bucket, round(mean_context / bucket) * bucket)
        tlp = replica._current_tlp
        system = replica.system
        target = system.plan_fc_target(rlp, tlp)
        key = (
            replica._workload_name,
            target.value,
            rlp,
            tlp,
            mean_context,
        )
        if cache is not None:
            scope = scope_of(system)
            entries = entries_of(scope)
            cached = entries.get(key) if entries is not None else None
            if cached is not None:
                hits += 1
                seconds[index] = cached
                continue
            misses += 1
        else:
            scope = id(system)
        keys[index] = key
        targets[index] = target
        # Group misses by interchangeable pricing: configuration-equal
        # system (the cache scope) serving the same workload. Mixed
        # fleets (MoE next to dense on identical hardware) split here.
        group_key = (scope, replica._workload_name)
        group = groups.get(group_key)
        if group is None:
            groups[group_key] = (replica, [index])
        else:
            group[1].append(index)
    if cache is not None:
        cache.hits += hits
        cache.misses += misses
    for representative, indices in groups.values():
        # Identical projections (e.g. a rank of idle equal replicas all
        # probing the same point) collapse to one grid lane.
        unique: Dict[PriceKey, List[int]] = {}
        for index in indices:
            unique.setdefault(keys[index], []).append(index)
        lanes = list(unique)
        grid = build_step_grid(
            representative.model,
            [key[2] for key in lanes],
            [key[3] for key in lanes],
            [key[4] for key in lanes],
            moe=representative.moe,
        )
        priced = price_steps_at(
            representative.system,
            grid,
            tuple(targets[unique[key][0]] for key in lanes),
        )
        for lane, key in enumerate(lanes):
            value = float(priced.seconds[lane])
            for index in unique[key]:
                seconds[index] = value
                if cache is not None:
                    cache.put(replicas[index].system, key, value)
    return seconds


def projected_completion_seconds(
    replica: Replica, request: Request, cache: Optional[PriceCache] = None
) -> float:
    """Projected arrival-to-``<eos>`` seconds if ``request`` joins ``replica``.

    A coarse, monotone-in-load completion estimate built from the same
    vectorized admission price routers already compute:

    * one iteration costs :func:`projected_step_seconds` plus the
      speculation config's per-iteration draft overhead;
    * the request itself needs ``ceil(output_len / E[tokens/iteration])``
      iterations;
    * the replica's backlog delays it by roughly the time the outstanding
      output tokens take to drain at full-batch throughput —
      ``remaining_tokens / (E * max_batch_size)`` iterations — which is
      what makes a queue of long-generation requests project a much later
      completion than an equal count of short ones.

    Prefill is deliberately not charged (second-order against decode for
    the workloads modeled here): this is an *admission signal* for SLO
    risk, not a latency predictor — what matters is that it grows with
    queued work and shrinks as the cluster drains, so deferred requests
    can be admitted once load clears.
    """
    step_s = projected_step_seconds(replica, request, cache)
    per_iteration = step_s + replica.speculation.draft_overhead_s()
    expected = max(1.0, replica.speculation.expected_tokens_per_iteration())
    own = math.ceil(request.output_len / expected)
    backlog = replica.outstanding_remaining_tokens() / (
        expected * replica.max_batch_size
    )
    return (own + backlog) * per_iteration


def projected_completion_seconds_fleet(
    replicas: Sequence[Replica],
    request: Request,
    cache: Optional[PriceCache] = None,
    step_seconds: Optional[Sequence[float]] = None,
) -> List[float]:
    """Projected completion seconds for every replica, in one pass.

    The fleet-batched twin of :func:`projected_completion_seconds`: the
    step prices come from one :func:`projected_step_seconds_fleet` call
    (or, for callers that already priced the fleet this arrival, the
    ``step_seconds`` they got back — the ``slo-slack`` router reuses its
    min-cost pass instead of pricing twice), and the speculation
    constants are the replicas' hoisted per-iteration values. Lane ``i``
    is bit-identical to ``projected_completion_seconds(replicas[i], ...)``.

    :class:`~repro.cluster.fleetstate.FleetState` fleets forward to the
    array-parallel
    :meth:`~repro.cluster.fleetstate.FleetState.fleet_completion_seconds`.
    """
    fleet = getattr(replicas, "fleet_completion_seconds", None)
    if fleet is not None:
        return fleet(request, step_seconds)
    if step_seconds is None:
        step_seconds = projected_step_seconds_fleet(replicas, request, cache)
    output_len = request.output_len
    completions: List[float] = []
    for replica, step_s in zip(replicas, step_seconds):
        per_iteration = step_s + replica.draft_overhead_per_iteration_s
        expected = replica.expected_tokens_per_iteration
        own = math.ceil(output_len / expected)
        backlog = replica.outstanding_remaining_tokens() / (
            expected * replica.max_batch_size
        )
        completions.append((own + backlog) * per_iteration)
    return completions


#: Cache-key sentinel for prompt-pass prices. Decode-step keys carry the
#: planned FC placement in this slot (an enum member on the scalar path,
#: its value string on the fleet path); the sentinel shares their cache
#: without ever colliding.
PREFILL_PRICE_TARGET = "prefill-pass"


def projected_prefill_seconds(
    replica: Replica, request: Request, cache: Optional[PriceCache] = None
) -> float:
    """Projected prompt-pass seconds if ``request`` joins ``replica``.

    The prefill-pool twin of :func:`projected_step_seconds`: the
    hypothetical post-admission batch shape comes from the replica's
    O(1) :meth:`~repro.cluster.replica.Replica.projected_admission_load`
    counters, the mean prompt is bucketed like every admission price,
    and the batch is priced through the system's own (pure)
    ``execute_prefill`` cost model — so a heterogeneous prefill pool
    ranks on each platform's true prompt-pass cost. Prices memoize in
    the shared :class:`PriceCache` under the
    :data:`PREFILL_PRICE_TARGET` sentinel.

    A session turn carrying a prefix-cache hint (``cached_prefix_len``)
    projects only its fresh suffix (``prefill_len``) into the batch —
    the discount the execution path grants at admission — so routing
    sees cheaper prompt passes for turns whose prefix is resident.
    Independent requests have ``prefill_len == input_len`` and price
    exactly as before.
    """
    rlp, mean_context = replica.projected_admission_load(request.prefill_len)
    bucket = ADMISSION_CONTEXT_BUCKET
    mean_context = max(bucket, round(mean_context / bucket) * bucket)
    system = replica.system
    if cache is not None:
        key = (
            replica.workload_name,
            PREFILL_PRICE_TARGET,
            rlp,
            1,
            mean_context,
        )
        cached = cache.get(system, key)
        if cached is not None:
            return cached
    seconds = float(
        system.execute_prefill(replica.model, rlp, mean_context).seconds
    )
    if cache is not None:
        cache.put(system, key, seconds)
    return seconds


def projected_prefill_completion_seconds(
    replica: Replica, request: Request, cache: Optional[PriceCache] = None
) -> float:
    """Projected arrival-to-first-token seconds at a prefill replica.

    The same coarse, monotone-in-load shape as
    :func:`projected_completion_seconds`: the request's own prompt pass
    (:func:`projected_prefill_seconds`) plus the backlog's drain time —
    the ``outstanding`` requests ahead of it need roughly
    ``outstanding / max_batch_size`` further passes of comparable cost.
    """
    prefill_s = projected_prefill_seconds(replica, request, cache)
    backlog = replica.outstanding() / replica.max_batch_size
    return (1.0 + backlog) * prefill_s


def best_decode_step_seconds(
    replicas: Sequence[Replica],
    request: Request,
    cache: Optional[PriceCache] = None,
    batched: bool = True,
) -> float:
    """Cheapest projected decode step across a pool.

    The decode-pool term of full-path pricing. Every lane is the pinned
    :func:`projected_step_seconds` value, so the minimum is identical
    whether the pool is probed scalar (``batched=False``), fleet-batched,
    or through a :class:`~repro.cluster.fleetstate.FleetState`.
    """
    if batched:
        return min(projected_step_seconds_fleet(replicas, request, cache))
    return min(
        projected_step_seconds(replica, request, cache)
        for replica in replicas
    )


def best_decode_completion_seconds(
    replicas: Sequence[Replica],
    request: Request,
    cache: Optional[PriceCache] = None,
    batched: bool = True,
) -> float:
    """Earliest projected completion across a decode pool.

    :class:`~repro.cluster.fleetstate.FleetState` pools answer from the
    memoized
    :meth:`~repro.cluster.fleetstate.FleetState.probe_min_completion`
    verdict; list pools take the minimum over the (bit-identical)
    per-replica projections.
    """
    if batched:
        probe = getattr(replicas, "probe_min_completion", None)
        if probe is not None:
            return probe(request)
        return min(
            projected_completion_seconds_fleet(replicas, request, cache)
        )
    return min(
        projected_completion_seconds(replica, request, cache)
        for replica in replicas
    )


class Router(abc.ABC):
    """Assigns each arriving request to a replica index."""

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        """Index of the replica that should serve ``request``."""

    def select_path(
        self,
        request: Request,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
        now: float,
    ) -> int:
        """Stage-1 of two-stage routing: pick the prefill replica.

        Disaggregated fleets route twice — the arrival picks a prefill
        replica here (index *within the prefill pool*), and the decode
        replica is picked by a plain :meth:`select` over the decode pool
        when the KV transfer lands. Price-aware policies override this
        to rank the *full path* (prefill cost + KV transfer + decode
        cost); load-spreading policies apply their usual rule to the
        prefill pool, which is where an arrival actually queues.
        """
        return self.select(request, prefill_pool, now)

    @property
    def price_cache(self) -> Optional[PriceCache]:
        """The router's admission-price memo, when it keeps one.

        Price-aware policies override this so the cluster report can
        surface hit/miss statistics; stateless policies return ``None``.
        """
        return None


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest queued + active requests."""

    name = "least-outstanding"

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        counts = getattr(replicas, "outstanding_counts", None)
        if counts is not None:
            # argmin returns the first minimum — the same (count, index)
            # tie-break as the scalar scan.
            return int(np.argmin(counts()))
        return min(
            range(len(replicas)), key=lambda i: (replicas[i].outstanding(), i)
        )


class IntensityAwareRouter(Router):
    """Route to keep each replica's RLP*TLP on its current FC placement.

    For every replica the router projects the post-admission intensity
    ``(active + waiting + 1) * TLP`` (capped at the batch size) against
    the replica's scheduler ``alpha``:

    * Among busy replicas whose projected intensity stays on their current
      placement side, pick the least loaded: admitting there costs no
      migration, now or (to first order) when RLP decays.
    * Otherwise open an idle replica: admission runs initial scheduling,
      which never counts as a migration, and a fresh batch starts on its
      preferred side.
    * If every choice would flip a placement, pick the replica with the
      most *headroom* — the projected intensity farthest from ``alpha`` —
      because a batch deep on one side takes the longest RLP decay to
      migrate.

    The net effect is that batches are packed up to (but not across) the
    crossover, instead of round-robin's pattern of filling every replica
    past ``alpha`` and letting each one thrash back at drain time.
    Replicas without a load signal (statically placed baselines) are
    ranked by vectorized projected admission cost instead — the same
    signal :class:`MinCostRouter` uses — so a mixed fleet of PAPI and
    static replicas still routes sensibly.
    """

    name = "intensity"

    def __init__(
        self, max_cache_entries: int = 4096, batched: bool = True
    ) -> None:
        self.batched = batched
        self._price_cache = PriceCache(
            max_cache_entries, share_equal_systems=batched
        )

    @property
    def price_cache(self) -> PriceCache:
        return self._price_cache

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        stay: List[Tuple[int, int]] = []  # (outstanding, index) — has a slot
        idle: List[int] = []
        saturated: List[Tuple[int, int]] = []  # on-side but batch is full
        flip: List[Tuple[float, int, int]] = []  # (-headroom, outstanding, i)
        fallback: List[Tuple[int, int]] = []
        for index, replica in enumerate(replicas):
            signal = replica.system.load_signal()
            outstanding = replica.outstanding()
            if signal is None:
                fallback.append((outstanding, index))
                continue
            if outstanding == 0:
                # Admission re-runs initial scheduling: placement is free.
                idle.append(index)
                continue
            projected = min(outstanding + 1, replica.max_batch_size)
            extra = projected - signal.rlp
            if signal.would_migrate(extra):
                flip.append((-signal.headroom(extra), outstanding, index))
            elif outstanding + 1 > replica.max_batch_size:
                saturated.append((outstanding, index))
            else:
                stay.append((outstanding, index))
        if stay:
            return min(stay)[1]
        if idle:
            return idle[0]
        if saturated:
            return min(saturated)[1]
        if flip:
            return min(flip)[2]
        if fallback:
            if self.batched:
                costs = projected_step_seconds_fleet(
                    [replicas[i] for _, i in fallback],
                    request,
                    self._price_cache,
                )
                ranked = [
                    (cost, outstanding, i)
                    for cost, (outstanding, i) in zip(costs, fallback)
                ]
            else:
                ranked = [
                    (
                        projected_step_seconds(
                            replicas[i], request, self._price_cache
                        ),
                        outstanding,
                        i,
                    )
                    for outstanding, i in fallback
                ]
            return min(ranked)[2]
        raise ConfigurationError("cluster has no replicas")


class MinCostRouter(Router):
    """Route to the replica whose next decoding step stays cheapest.

    Every replica prices its hypothetical post-admission iteration via
    :func:`projected_step_seconds` (one vectorized ``price_steps`` call
    per replica), and the request joins the minimum. Ties break toward
    fewer outstanding requests, then lower index.

    This is the policy that unlocks *mixed fleets*: the systems behind
    the replicas can be completely different platforms (PAPI next to
    A100+AttAcc next to PIM-only) because each replica's own cost model
    produces the admission signal — no scheduler load signal or shared
    alpha required.
    """

    name = "min-cost"

    def __init__(
        self, max_cache_entries: int = 4096, batched: bool = True
    ) -> None:
        self.batched = batched
        self._price_cache = PriceCache(
            max_cache_entries, share_equal_systems=batched
        )

    @property
    def price_cache(self) -> PriceCache:
        return self._price_cache

    def _step_costs(
        self,
        request: Request,
        replicas: Sequence[Replica],
        now: Optional[float] = None,
    ) -> List[float]:
        """Per-replica projected admission price, batched when enabled.

        With ``now`` given, an admission-controller fleet probe for this
        exact arrival (same request object, instant, and replica list) is
        reused instead of re-priced — see :func:`fleet_probe_memo`.
        """
        if self.batched:
            if now is not None:
                memo = fleet_probe_memo(
                    self._price_cache, replicas, request, now
                )
                if memo is not None:
                    return memo[0]
            return projected_step_seconds_fleet(
                replicas, request, self._price_cache
            )
        return [
            projected_step_seconds(replica, request, self._price_cache)
            for replica in replicas
        ]

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        if not replicas:
            raise ConfigurationError("cluster has no replicas")
        if self.batched:
            fast = getattr(replicas, "route_min_cost", None)
            if fast is not None:
                # Vectorized fleets return the memoized verdict directly:
                # the same lexsort over the same probe vectors, reused
                # O(1) while the fleet version holds still.
                return fast(request)
        costs = self._step_costs(request, replicas, now)
        counts = getattr(replicas, "outstanding_counts", None)
        if counts is not None:
            # lexsort ranks by its *last* key first and is stable, so
            # (cost, outstanding, index) ordering matches the tuple min.
            order = np.lexsort((counts(), np.asarray(costs)))
            return int(order[0])
        ranked = [
            (cost, replica.outstanding(), i)
            for i, (cost, replica) in enumerate(zip(costs, replicas))
        ]
        return min(ranked)[2]

    def _path_costs(
        self,
        request: Request,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
    ) -> List[float]:
        """Full-path price per prefill replica: prompt pass + KV
        transfer + the cheapest decode step the pool offers.

        The transfer and decode terms are uniform across prefill
        candidates (the decode replica is chosen later, when the
        transfer lands), so they shift every lane identically — the
        ranking is honest about what a path costs without pretending to
        know stage-2's outcome ahead of time.
        """
        tail = interconnect.transfer_seconds(
            request.input_len + 1
        ) + best_decode_step_seconds(
            decode_pool, request, self._price_cache, batched=self.batched
        )
        return [
            projected_prefill_seconds(replica, request, self._price_cache)
            + tail
            for replica in prefill_pool
        ]

    def select_path(
        self,
        request: Request,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
        now: float,
    ) -> int:
        costs = self._path_costs(
            request, prefill_pool, decode_pool, interconnect
        )
        ranked = [
            (cost, replica.outstanding(), i)
            for i, (cost, replica) in enumerate(zip(costs, prefill_pool))
        ]
        return min(ranked)[2]


class SLOSlackRouter(MinCostRouter):
    """Min-cost routing that first protects each request's deadline.

    Extends :class:`MinCostRouter` with *deadline slack*: for every
    replica the router projects the request's completion time
    (:func:`projected_completion_seconds`) and computes the slack left
    against the request's absolute ``deadline_s``.

    * Among replicas whose projection still meets the deadline
      (slack >= 0), pick the cheapest next step — exactly min-cost,
      restricted to the feasible set, so SLO traffic never trades its
      budget for a marginally cheaper iteration elsewhere.
    * If no replica can meet the deadline, pick the one with the most
      slack (least-late), breaking ties toward cheaper steps, fewer
      outstanding requests, then lower index.
    * Best-effort requests (``deadline_s is None``) see every replica as
      infinitely slack and degrade to plain min-cost — a mixed
      tight-SLO + best-effort trace routes each class appropriately.
    """

    name = "slo-slack"

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        if not replicas:
            raise ConfigurationError("cluster has no replicas")
        if self.batched:
            fast = getattr(replicas, "route_slo_slack", None)
            if fast is not None:
                # Vectorized fleets return the memoized verdict directly
                # (slack recomputed elementwise against this arrival's
                # deadline and clock; everything else reused O(1) while
                # the fleet version holds still).
                return fast(request, now)
        memo = (
            fleet_probe_memo(self._price_cache, replicas, request, now)
            if self.batched
            else None
        )
        costs = (
            memo[0] if memo is not None
            else self._step_costs(request, replicas)
        )
        if request.deadline_s is None:
            slacks: Sequence[float] = (math.inf,) * len(replicas)
        elif self.batched:
            # Reuse this arrival's projections: the admission controller
            # probed identical replica state a moment ago (the memo), and
            # even without one the completion pass shares the step prices
            # — the scalar path prices twice and hits the cache; the
            # fleet path skips the second key-build round entirely.
            completions = (
                memo[1] if memo is not None
                else projected_completion_seconds_fleet(
                    replicas, request, self._price_cache, step_seconds=costs
                )
            )
            deadline = request.deadline_s
            slacks = [deadline - (now + c) for c in completions]
        else:
            slacks = [
                request.deadline_s
                - (
                    now
                    + projected_completion_seconds(
                        replica, request, self._price_cache
                    )
                )
                for replica in replicas
            ]
        counts_fn = getattr(replicas, "outstanding_counts", None)
        if counts_fn is not None:
            counts = counts_fn()
            cost_arr = np.asarray(costs)
            slack_arr = np.asarray(slacks)
            feasible_mask = slack_arr >= 0.0
            if feasible_mask.any():
                idx = np.nonzero(feasible_mask)[0]
                order = np.lexsort((counts[idx], cost_arr[idx]))
                return int(idx[order[0]])
            order = np.lexsort((counts, cost_arr, -slack_arr))
            return int(order[0])
        feasible: List[Tuple[float, int, int]] = []  # (cost, outstanding, i)
        ranked: List[Tuple[float, float, int, int]] = []  # (-slack, cost, ...)
        for i, replica in enumerate(replicas):
            outstanding = replica.outstanding()
            ranked.append((-slacks[i], costs[i], outstanding, i))
            if slacks[i] >= 0.0:
                feasible.append((costs[i], outstanding, i))
        if feasible:
            return min(feasible)[2]
        return min(ranked)[3]

    def select_path(
        self,
        request: Request,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
        now: float,
    ) -> int:
        """Deadline-aware stage-1: project the *whole* handoff.

        Each prefill candidate's completion projection is its
        arrival-to-first-token estimate plus the KV transfer plus the
        best completion the decode pool offers — the same cross-handoff
        projection :class:`~repro.cluster.admission.PathProber` feeds
        the admission controller. Feasible candidates (projection meets
        the deadline) rank by full-path cost; when none fit, the
        least-late candidate wins.
        """
        costs = self._path_costs(
            request, prefill_pool, decode_pool, interconnect
        )
        if request.deadline_s is None:
            ranked_cost = [
                (cost, replica.outstanding(), i)
                for i, (cost, replica) in enumerate(zip(costs, prefill_pool))
            ]
            return min(ranked_cost)[2]
        tail = interconnect.transfer_seconds(
            request.input_len + 1
        ) + best_decode_completion_seconds(
            decode_pool, request, self._price_cache, batched=self.batched
        )
        deadline = request.deadline_s
        feasible: List[Tuple[float, int, int]] = []  # (cost, outstanding, i)
        ranked: List[Tuple[float, float, int, int]] = []  # (-slack, cost, ...)
        for i, replica in enumerate(prefill_pool):
            completion = (
                projected_prefill_completion_seconds(
                    replica, request, self._price_cache
                )
                + tail
            )
            slack = deadline - (now + completion)
            outstanding = replica.outstanding()
            ranked.append((-slack, costs[i], outstanding, i))
            if slack >= 0.0:
                feasible.append((costs[i], outstanding, i))
        if feasible:
            return min(feasible)[2]
        return min(ranked)[3]


#: Default cost-degradation the affinity router tolerates to keep a
#: session on its home replica: the home wins whenever its projected
#: admission cost is within ``(1 + tolerance)`` of the fleet minimum.
#: At 0 the policy degrades to exact slo-slack/min-cost; large values
#: pin sessions regardless of load.
AFFINITY_TOLERANCE = 0.25


class SessionAffinityRouter(SLOSlackRouter):
    """Slo-slack routing that keeps a session on its prefix-cache home.

    Session turns reuse KV only where their prefix is resident — the
    replica that served the previous turn. This policy remembers each
    session's last verdict (its *home*) and overrides the base
    slo-slack/min-cost verdict with the home whenever the trade is
    sound:

    * the home's projected admission cost is within ``(1 + tolerance)``
      of the winner's (locality never buys unbounded load imbalance);
    * a deadline-carrying turn's projected completion at the home still
      meets its deadline (affinity composes with, never overrides, the
      SLO protection).

    Non-session requests — and stage-2 decode-pool routing, where no
    prefix cache exists — take the parent verdict untouched, so
    independent traffic routes bit-identically to ``slo-slack``. Every
    probe this overlay adds goes through the same fleet-batched /
    vectorized pricing surfaces as the base policy (memoized dense
    tables on a :class:`~repro.cluster.fleetstate.FleetState`), so the
    three simulation cores agree bit-for-bit.
    """

    name = "session-affinity"

    def __init__(
        self,
        max_cache_entries: int = 4096,
        batched: bool = True,
        tolerance: float = AFFINITY_TOLERANCE,
    ) -> None:
        super().__init__(max_cache_entries, batched=batched)
        if tolerance < 0:
            raise ConfigurationError("tolerance must be non-negative")
        self.tolerance = tolerance
        #: session id -> last verdict index, per routing stage (colocated
        #: ``select`` and disaggregated ``select_path`` rank different
        #: pools, so their home indices must never mix).
        self._session_homes: Dict[int, int] = {}
        self._path_homes: Dict[int, int] = {}

    def _meets_deadline(
        self,
        request: Request,
        replicas: Sequence[Replica],
        home: int,
        costs: Sequence[float],
        now: float,
    ) -> bool:
        """Whether the home's projected completion meets the deadline.

        The slack is computed exactly as the base policy computes it —
        ``deadline - (now + completion)`` over the same fleet-batched
        projection — so feasibility here can never disagree with what
        slo-slack itself would have concluded about the home lane.
        """
        if request.deadline_s is None:
            return True
        if self.batched:
            completions = projected_completion_seconds_fleet(
                replicas, request, self._price_cache, step_seconds=costs
            )
            completion = completions[home]
        else:
            completion = projected_completion_seconds(
                replicas[home], request, self._price_cache
            )
        return request.deadline_s - (now + completion) >= 0.0

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        best = super().select(request, replicas, now)
        session = request.session_id
        if session is None or replicas[best].role == "decode":
            # Stage-2 decode routing in a disaggregated fleet: no prefix
            # cache lives there, so affinity has nothing to buy.
            return best
        choice = best
        home = self._session_homes.get(session)
        if home is not None and home != best and home < len(replicas):
            costs = self._step_costs(request, replicas, now)
            if costs[home] <= costs[best] * (
                1.0 + self.tolerance
            ) and self._meets_deadline(request, replicas, home, costs, now):
                choice = home
        self._session_homes[session] = choice
        return choice

    def select_path(
        self,
        request: Request,
        prefill_pool: Sequence[Replica],
        decode_pool: Sequence[Replica],
        interconnect: object,
        now: float,
    ) -> int:
        best = super().select_path(
            request, prefill_pool, decode_pool, interconnect, now
        )
        session = request.session_id
        if session is None:
            return best
        choice = best
        home = self._path_homes.get(session)
        if home is not None and home != best and home < len(prefill_pool):
            costs = self._path_costs(
                request, prefill_pool, decode_pool, interconnect
            )
            feasible = True
            if request.deadline_s is not None:
                completion = projected_prefill_completion_seconds(
                    prefill_pool[home], request, self._price_cache
                ) + interconnect.transfer_seconds(
                    request.input_len + 1
                ) + best_decode_completion_seconds(
                    decode_pool,
                    request,
                    self._price_cache,
                    batched=self.batched,
                )
                feasible = request.deadline_s - (now + completion) >= 0.0
            if feasible and costs[home] <= costs[best] * (
                1.0 + self.tolerance
            ):
                choice = home
        self._path_homes[session] = choice
        return choice


_ROUTERS: Dict[str, Type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    IntensityAwareRouter.name: IntensityAwareRouter,
    MinCostRouter.name: MinCostRouter,
    SLOSlackRouter.name: SLOSlackRouter,
    SessionAffinityRouter.name: SessionAffinityRouter,
}


def available_routers() -> Tuple[str, ...]:
    """Names of all registered routing policies, sorted."""
    return tuple(sorted(_ROUTERS))


def build_router(name: str, batched: bool = True) -> Router:
    """Instantiate a routing policy by registry name.

    ``batched`` selects fleet-batched admission pricing on the
    price-aware policies (scalar per-replica pricing when ``False`` —
    the pre-optimization reference path, bit-identical in routing
    decisions); stateless policies ignore it.
    """
    try:
        cls = _ROUTERS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_ROUTERS))
        raise ConfigurationError(
            f"unknown router {name!r}; known routers: {known}"
        ) from None
    if issubclass(cls, (MinCostRouter, IntensityAwareRouter)):
        return cls(batched=batched)
    return cls()
