"""Pluggable request-routing policies for multi-replica serving.

The router is the cluster's admission-control brain: every arriving
request is assigned to exactly one replica, and the choice shapes both
tail latency (load balance) and scheduler behavior (how often each
replica's FC placement migrates between PUs and FC-PIM).

Three policies:

* **round-robin** — classic stateless spreading; the baseline every
  serving stack ships.
* **least-outstanding** — route to the replica with the fewest queued +
  active requests; the standard load-aware heuristic.
* **intensity** — parallelism-aware routing built on the PAPI scheduler's
  load signal (:class:`~repro.core.scheduler.LoadSignal`): prefer
  replicas whose projected ``RLP * TLP`` stays on the same side of the
  calibrated ``alpha`` crossover after admission, so batches sit firmly
  on one FC placement instead of hovering at the boundary and thrashing
  between PUs and FC-PIM as runtime RLP decays.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence, Tuple, Type

from repro.cluster.replica import Replica
from repro.errors import ConfigurationError
from repro.serving.request import Request


class Router(abc.ABC):
    """Assigns each arriving request to a replica index."""

    #: Registry/reporting name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        """Index of the replica that should serve ``request``."""


class RoundRobinRouter(Router):
    """Cycle through replicas in arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index


class LeastOutstandingRouter(Router):
    """Route to the replica with the fewest queued + active requests."""

    name = "least-outstanding"

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        return min(
            range(len(replicas)), key=lambda i: (replicas[i].outstanding(), i)
        )


class IntensityAwareRouter(Router):
    """Route to keep each replica's RLP*TLP on its current FC placement.

    For every replica the router projects the post-admission intensity
    ``(active + waiting + 1) * TLP`` (capped at the batch size) against
    the replica's scheduler ``alpha``:

    * Among busy replicas whose projected intensity stays on their current
      placement side, pick the least loaded: admitting there costs no
      migration, now or (to first order) when RLP decays.
    * Otherwise open an idle replica: admission runs initial scheduling,
      which never counts as a migration, and a fresh batch starts on its
      preferred side.
    * If every choice would flip a placement, pick the replica with the
      most *headroom* — the projected intensity farthest from ``alpha`` —
      because a batch deep on one side takes the longest RLP decay to
      migrate.

    The net effect is that batches are packed up to (but not across) the
    crossover, instead of round-robin's pattern of filling every replica
    past ``alpha`` and letting each one thrash back at drain time. Falls
    back to least-outstanding for systems without a load signal
    (statically placed baselines).
    """

    name = "intensity"

    def select(
        self, request: Request, replicas: Sequence[Replica], now: float
    ) -> int:
        stay: List[Tuple[int, int]] = []  # (outstanding, index) — has a slot
        idle: List[int] = []
        saturated: List[Tuple[int, int]] = []  # on-side but batch is full
        flip: List[Tuple[float, int, int]] = []  # (-headroom, outstanding, i)
        fallback: List[Tuple[int, int]] = []
        for index, replica in enumerate(replicas):
            signal = replica.system.load_signal()
            outstanding = replica.outstanding()
            if signal is None:
                fallback.append((outstanding, index))
                continue
            if outstanding == 0:
                # Admission re-runs initial scheduling: placement is free.
                idle.append(index)
                continue
            projected = min(outstanding + 1, replica.max_batch_size)
            extra = projected - signal.rlp
            if signal.would_migrate(extra):
                flip.append((-signal.headroom(extra), outstanding, index))
            elif outstanding + 1 > replica.max_batch_size:
                saturated.append((outstanding, index))
            else:
                stay.append((outstanding, index))
        if stay:
            return min(stay)[1]
        if idle:
            return idle[0]
        if saturated:
            return min(saturated)[1]
        if flip:
            return min(flip)[2]
        if fallback:
            return min(fallback)[1]
        raise ConfigurationError("cluster has no replicas")


_ROUTERS: Dict[str, Type[Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    LeastOutstandingRouter.name: LeastOutstandingRouter,
    IntensityAwareRouter.name: IntensityAwareRouter,
}


def available_routers() -> Tuple[str, ...]:
    """Names of all registered routing policies, sorted."""
    return tuple(sorted(_ROUTERS))


def build_router(name: str) -> Router:
    """Instantiate a routing policy by registry name."""
    try:
        return _ROUTERS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_ROUTERS))
        raise ConfigurationError(
            f"unknown router {name!r}; known routers: {known}"
        ) from None
