"""The prefill->decode KV-transfer link of a disaggregated fleet.

When a fleet splits into prefill and decode pools, every request that
survives its prompt pass ships its KV cache — one entry per context
token — across the inter-pool link before a decode replica can admit
it. This module is the runtime cost model for that hop, mirrored from
:class:`~repro.scenario.spec.InterconnectSpec` (the spec layer decodes
and validates; the cluster layer only prices):

``transfer_seconds(context) = hop_latency_s
+ context * kv_bytes_per_token / (bandwidth_gb_s * 1e9)``

The same instance serves three consumers, so the handoff is priced with
one formula everywhere: the cluster loop schedules each ``KV_TRANSFER``
event at ``now + transfer_seconds(context_len)``, the price-aware
routers fold the transfer into full-path costs, and the admission
controller's :class:`~repro.cluster.admission.PathProber` folds it into
cross-handoff completion projections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Interconnect:
    """KV-transfer cost model between role-typed replica pools.

    Attributes:
        kv_bytes_per_token: KV-cache footprint per context token, in
            bytes. The default models a llama-65b-sized cache: 80 layers
            x 8192 hidden x K+V at fp16 = 2.5 MiB per token.
        bandwidth_gb_s: Link bandwidth in GB/s (1 GB = 1e9 bytes).
        hop_latency_s: Fixed per-transfer latency (link setup, routing).
    """

    kv_bytes_per_token: float = 2_621_440.0
    bandwidth_gb_s: float = 50.0
    hop_latency_s: float = 50e-6

    def __post_init__(self) -> None:
        if self.kv_bytes_per_token <= 0:
            raise ConfigurationError("kv_bytes_per_token must be positive")
        if self.bandwidth_gb_s <= 0:
            raise ConfigurationError("bandwidth_gb_s must be positive")
        if self.hop_latency_s < 0:
            raise ConfigurationError("hop_latency_s must be non-negative")

    def transfer_seconds(self, context_tokens: int) -> float:
        """Seconds to move ``context_tokens`` of KV cache between pools."""
        return self.hop_latency_s + (
            context_tokens * self.kv_bytes_per_token
        ) / (self.bandwidth_gb_s * 1e9)
