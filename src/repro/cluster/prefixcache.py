"""Per-replica session prefix/KV cache: byte capacity, LRU eviction.

A replica that served a session turn can keep the turn's final KV
context around; the session's next turn then reuses the resident prefix
and only prefills its fresh suffix — the prompt-pass discount that makes
session-affinity routing pay. The cache is a deliberately simple model:

* One entry per session, holding the session's latest *context length*
  in tokens (the KV bytes are ``tokens * bytes_per_token``). A new turn
  of a resident session replaces the entry (the KV grows in place).
* Capacity is in bytes; inserting past capacity evicts least-recently-
  used sessions until the new entry fits. An entry larger than the
  whole cache is not admitted (counted as a failed insert, not an
  eviction storm).
* ``lookup`` is the serving-path read: it counts a hit or miss, renews
  the entry's recency, and returns the resident prefix length. ``peek``
  is the routing-path read: same answer, no counter or recency
  mutation — probing candidate replicas must not perturb LRU state.

Determinism: all three simulation cores drive the cache through the
same call sites in the same event order, so hit/miss/eviction sequences
are bit-identical across cores.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.errors import ConfigurationError


class PrefixCache:
    """LRU prefix cache over sessions with a byte-capacity bound.

    Attributes:
        capacity_tokens: Capacity expressed in whole context tokens
            (``capacity_bytes // bytes_per_token``).
        hits: Lookups that found a resident prefix.
        misses: Lookups that found none.
        evictions: Entries evicted to make room.
        cached_tokens: Prefix tokens served from cache across all hits —
            prompt tokens the replica never had to prefill.
    """

    def __init__(self, capacity_tokens: int) -> None:
        if capacity_tokens < 1:
            raise ConfigurationError(
                "prefix cache capacity must hold at least one token"
            )
        self.capacity_tokens = capacity_tokens
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self._resident_tokens = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.cached_tokens = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_tokens(self) -> int:
        """Context tokens currently resident across all sessions."""
        return self._resident_tokens

    def peek(self, session_id: int, prefix_len: int) -> int:
        """Resident prefix length for a turn, without touching state.

        The routing-time probe: returns ``min(resident context,
        prefix_len)`` — the turn can reuse at most its own prefix — and
        0 when the session is absent. No counters move and LRU order is
        unchanged, so pricing any number of candidates is side-effect
        free.
        """
        resident = self._entries.get(session_id)
        if resident is None:
            return 0
        return resident if resident < prefix_len else prefix_len

    def lookup(self, session_id: int, prefix_len: int) -> int:
        """Serving-path read: count hit/miss, renew recency, return the
        resident prefix length (0 on a miss)."""
        resident = self._entries.get(session_id)
        if resident is None or prefix_len <= 0:
            self.misses += 1
            return 0
        self._entries.move_to_end(session_id)
        self.hits += 1
        cached = resident if resident < prefix_len else prefix_len
        self.cached_tokens += cached
        return cached

    def insert(self, session_id: int, context_tokens: int) -> None:
        """Make ``session_id``'s latest context resident.

        Replaces any previous entry for the session (the KV grows in
        place), then evicts LRU sessions until the cache fits. A
        context larger than the whole capacity is dropped — the replica
        cannot retain it.
        """
        if context_tokens <= 0:
            raise ConfigurationError("context_tokens must be positive")
        previous = self._entries.pop(session_id, None)
        if previous is not None:
            self._resident_tokens -= previous
        if context_tokens > self.capacity_tokens:
            return
        while (
            self._resident_tokens + context_tokens > self.capacity_tokens
            and self._entries
        ):
            _, evicted = self._entries.popitem(last=False)
            self._resident_tokens -= evicted
            self.evictions += 1
        self._entries[session_id] = context_tokens
        self._resident_tokens += context_tokens

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reporting (merged across replicas)."""
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_tokens": self.cached_tokens,
            "hit_rate": self.hits / total if total else 0.0,
        }
