"""Multi-replica cluster serving on one simulated event timeline.

The cluster simulator merges every replica's events on a single
:class:`~repro.serving.clock.EventQueue`:

* ``ARRIVAL`` — the admission controller (when configured) may reject the
  request outright or defer it to a later re-arrival; otherwise the
  router assigns it to a replica, and if that replica is idle an
  ``ADMIT`` is scheduled at the same timestamp.
* ``ADMIT`` — the replica pulls waiting requests into its batch and
  schedules its next ``STEP_DONE``.
* ``STEP_DONE`` — the replica completes one decoding iteration, refills
  freed slots, and reschedules itself while it has work.

Replicas advance independently — one can be three iterations ahead of
another — which is exactly the behavior a wall-clock cluster would show,
and what makes per-replica utilization and FC-migration counts meaningful
evaluation outputs (cf. C2CServe / HERMES treating the cluster, not the
engine, as the unit of evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence

from repro.cluster.admission import (
    AdmissionDecision,
    PathProber,
    SLOAdmissionController,
)
from repro.cluster.fleetstate import FleetState
from repro.cluster.interconnect import Interconnect
from repro.cluster.replica import Replica
from repro.cluster.router import Router
from repro.errors import ConfigurationError, SimulationError
from repro.serving.clock import (
    ADMIT_CODE,
    ARRIVAL_CODE,
    KV_TRANSFER_CODE,
    STEP_DONE_CODE,
    EventCalendar,
    EventKind,
    EventQueue,
)
from repro.serving.metrics import RunSummary, latency_percentile_of
from repro.serving.request import Request, RequestPhase, RequestState

#: How far ahead the vectorized core peeks into the pending arrival run
#: (presorted static lane plus deferral lanes) when it coalesces: deep
#: enough to batch-project a whole synchronized deferral storm in one
#: dense matrix pass, while peeking stays O(members) per run — each
#: member is scanned once, amortized by the run it belongs to.
ARRIVAL_RUN_PEEK = 64

#: After this many consecutive arrival runs priced no new table point,
#: the dense price tables are considered converged and the per-run
#: warm-up pass is skipped: probes answer from the tables directly, and
#: a late never-seen operating point simply prices through the
#: incremental lane refresh instead (same floats, slower lookup).
PRICE_RUN_WARM_STREAK = 64

#: How many upcoming arrivals (per calendar lane) the vectorized core
#: gathers when it batch-prices admission verdicts for the current
#: fleet version. Rows are a cache keyed on the version — members not
#: reached before the next router-visible state change are simply
#: recomputed then — so the lookahead trades a little wasted pricing in
#: admit-heavy stretches for one dense pass per storm segment.
VERDICT_BATCH_LOOKAHEAD = 12


@dataclass(frozen=True)
class ReplicaReport:
    """Per-replica results of one cluster run.

    Attributes:
        replica_id: Index within the cluster.
        system: The replica's system name.
        model: The workload served (the MoE variant's name when sparse —
            mixed fleets report per-replica models).
        requests_served: Requests routed here and finished.
        tokens_generated: Accepted output tokens.
        iterations: Decoding iterations executed.
        reschedules: FC migrations between PUs and FC-PIM.
        busy_seconds: Prefill + decode + draft time.
        utilization: ``busy_seconds`` over the cluster makespan.
        acceptance_rate: Observed fraction of drafted tokens accepted
            (1.0 when the replica never speculated).
        expert_token_visits: Total token-expert visits routed through the
            replica's MoE FFN (0 for dense replicas).
        mean_active_experts: Mean distinct experts activated per
            iteration (0 for dense replicas).
        summary: The replica's full run summary.
        role: Pool role served (``colocated`` / ``prefill`` / ``decode``).
        requests_transferred: Requests this replica handed to the decode
            pool at first token (prefill-role replicas only; 0 elsewhere).
    """

    replica_id: int
    system: str
    model: str
    requests_served: int
    tokens_generated: int
    iterations: int
    reschedules: int
    busy_seconds: float
    utilization: float
    acceptance_rate: float
    expert_token_visits: int
    mean_active_experts: float
    summary: RunSummary
    role: str = "colocated"
    requests_transferred: int = 0


@dataclass(frozen=True)
class PoolReport:
    """Per-pool rollup of a disaggregated cluster run.

    Attributes:
        role: ``prefill`` or ``decode``.
        replicas: Replica count in the pool.
        requests_served: Requests that *finished* at this pool's replicas
            (single-token requests finish in the prefill pool; everything
            else finishes in decode).
        requests_transferred: KV handoffs the pool emitted (prefill) —
            always 0 for the decode pool.
        tokens_generated: Accepted output tokens produced in the pool.
        busy_seconds: Summed prefill + decode + draft time.
        utilization: ``busy_seconds`` over ``replicas x makespan``.
        queueing_seconds: Summed request wait (arrival-to-admission for
            prefill, transfer-landing-to-admission for decode).
    """

    role: str
    replicas: int
    requests_served: int
    requests_transferred: int
    tokens_generated: int
    busy_seconds: float
    utilization: float
    queueing_seconds: float


@dataclass(frozen=True)
class TenantReport:
    """Per-tenant results of one cluster run.

    Attributes:
        tenant: Traffic-class label (``Request.tenant``).
        submitted: Requests the tenant's trace offered.
        admitted: Requests admitted into a replica (and, because the
            cluster drains fully, served).
        rejected: Requests dropped by admission control.
        deferrals: Deferral events (one request may defer several times).
        served: Requests that finished decoding.
        p50_latency_s / p99_latency_s / mean_latency_s: Arrival-to-
            ``<eos>`` latency over the tenant's served requests (0.0 when
            nothing was served).
        slo_p99_seconds: The tenant's per-request latency budget
            (0.0 = best effort).
        slo_attainment: Fraction of *submitted* requests that finished
            within their deadline — rejected requests count as misses, so
            shedding load cannot inflate the score. Best-effort tenants
            attain on every served request.
    """

    tenant: str
    submitted: int
    admitted: int
    rejected: int
    deferrals: int
    served: int
    p50_latency_s: float
    p99_latency_s: float
    mean_latency_s: float
    slo_p99_seconds: float
    slo_attainment: float


@dataclass(frozen=True)
class ClusterSummary:
    """Aggregated results of one cluster run.

    Attributes:
        router: Routing policy name.
        model: Model name.
        makespan_seconds: Arrival of the first request to the last
            completion, on the simulated clock.
        total_requests: Requests served across all replicas.
        replicas: Per-replica reports, in replica order.
        router_cache: Admission-price-cache counters (hits, misses,
            hit_rate, entries, max_entries) for price-aware routers;
            empty for stateless policies.
        probe_memo: Fleet-version verdict-memo counters from the
            vectorized core (probe_hits, probe_misses, hit_rate,
            runs_coalesced, version_bumps); empty under the event core.
        tenants: Per-tenant reports keyed by tenant name, in trace
            arrival order (single-tenant runs report one ``default``
            entry).
        pools: Per-pool rollups keyed by role (``prefill`` / ``decode``)
            for disaggregated fleets; empty on colocated runs.
        ttft: Time-to-first-token statistics over requests that reached
            a prefill replica (``mean_s`` / ``p50_s`` / ``p99_s`` /
            ``samples``); empty on colocated runs, where first-token
            time is not tracked separately.
        transfer_wait: KV-transfer wait statistics (first token to
            transfer completion) over handed-off requests, same keys;
            empty on colocated runs.
        prefix_cache: Summed prefix-cache counters across the fleet's
            caches (hits, misses, evictions, cached_tokens, hit_rate);
            empty when no replica carries a cache.
        sessions: Session-workload statistics (session/turn counts,
            prefix tokens served from cache, and follow-up-turn latency
            under ``followup_latency``); empty on session-free traces.
        step_macro: Macro-stepping counters summed across the fleet:
            ``macro_steps`` (closed-form advances taken),
            ``iterations_compressed`` (iterations they covered), and
            ``fallback_<reason>`` counts for runs that stepped
            per-iteration instead (``admittable``, ``finish_due``,
            ``horizon``, ``iteration_cap``, plus the static
            ``context_mode`` / ``tlp_policy`` / ``speculation_draws``
            latches). Empty when no replica ever attempted one.
    """

    router: str
    model: str
    makespan_seconds: float
    total_requests: int
    replicas: List[ReplicaReport]
    router_cache: Dict[str, float] = field(default_factory=dict)
    probe_memo: Dict[str, float] = field(default_factory=dict)
    tenants: Dict[str, TenantReport] = field(default_factory=dict)
    pools: Dict[str, PoolReport] = field(default_factory=dict)
    ttft: Dict[str, float] = field(default_factory=dict)
    transfer_wait: Dict[str, float] = field(default_factory=dict)
    prefix_cache: Dict[str, float] = field(default_factory=dict)
    sessions: Dict[str, object] = field(default_factory=dict)
    step_macro: Dict[str, float] = field(default_factory=dict)

    @cached_property
    def request_latencies(self) -> List[float]:
        """Pooled arrival-to-``<eos>`` latencies across replicas.

        Computed once and cached on first access — ``mean_latency`` and
        every ``latency_percentile`` call share one pooled list instead
        of re-concatenating the fleet's latency arrays per metric, which
        matters when reports query several percentiles over a
        million-request trace. The replica summaries are final by the
        time a :class:`ClusterSummary` exists, so the cache cannot go
        stale.

        Contract: returns the empty list (never raises) when nothing was
        served — e.g. when admission control rejected the whole trace.
        """
        pooled: List[float] = []
        for report in self.replicas:
            pooled.extend(report.summary.request_latencies)
        return pooled

    @property
    def total_reschedules(self) -> int:
        """FC migrations across all replicas (lower is steadier)."""
        return sum(report.reschedules for report in self.replicas)

    @property
    def tokens_generated(self) -> int:
        return sum(report.tokens_generated for report in self.replicas)

    @property
    def tokens_per_second(self) -> float:
        """Cluster goodput: accepted tokens per makespan second."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.tokens_generated / self.makespan_seconds

    @property
    def mean_latency(self) -> float:
        latencies = self.request_latencies
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def latency_percentile(self, percentile: float) -> float:
        """Pooled per-request latency percentile (e.g. 50, 99).

        Contract: an empty sample (no requests served, e.g. a fully
        rejected trace) returns 0.0 instead of raising, so reports over
        admission-controlled runs never crash on the degenerate case; an
        out-of-range percentile still raises ``ConfigurationError``.
        """
        return latency_percentile_of(
            self.request_latencies, percentile, empty_value=0.0
        )


class ClusterSimulator:
    """Drives N replicas through an arrival trace under a routing policy.

    Args:
        replicas: The fleet, in replica-id order.
        router: Request-to-replica assignment policy.
        admission: Optional SLO-aware admission controller consulted on
            every arrival (including re-arrivals of deferred requests);
            ``None`` admits everything — the pre-multi-tenant behavior.
        interconnect: KV-transfer cost model between the prefill and
            decode pools; required exactly when the fleet carries
            role-typed replicas (and rejected on colocated fleets).
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        router: Router,
        admission: Optional[SLOAdmissionController] = None,
        interconnect: Optional[Interconnect] = None,
    ) -> None:
        if not replicas:
            raise ConfigurationError("cluster needs at least one replica")
        self.replicas = list(replicas)
        self.router = router
        self.admission = admission
        self.interconnect = interconnect
        # Session bookkeeping: the replica that last admitted each
        # session's turn — the one whose prefix cache could hold the
        # session's context. Arrival handling peeks it (read-only) to
        # stamp the routing-time residency hint.
        self._session_holder: Dict[int, int] = {}
        roles = {replica.role for replica in self.replicas}
        self._disaggregated = roles != {"colocated"}
        self._prefill_indices: List[int] = []
        self._decode_indices: List[int] = []
        if self._disaggregated:
            if "colocated" in roles:
                raise ConfigurationError(
                    "colocated replicas cannot mix with prefill/decode "
                    "pools; a fleet is either all-colocated or "
                    "disaggregated"
                )
            if "prefill" not in roles or "decode" not in roles:
                raise ConfigurationError(
                    "a disaggregated fleet needs both a prefill and a "
                    "decode pool"
                )
            if interconnect is None:
                raise ConfigurationError(
                    "a disaggregated fleet needs an interconnect "
                    "(the KV-transfer cost model)"
                )
            for index, replica in enumerate(self.replicas):
                if replica.role == "prefill":
                    self._prefill_indices.append(index)
                else:
                    self._decode_indices.append(index)
            self._prefill_pool = [
                self.replicas[i] for i in self._prefill_indices
            ]
            self._decode_pool = [
                self.replicas[i] for i in self._decode_indices
            ]
        elif interconnect is not None:
            raise ConfigurationError(
                "only disaggregated fleets (prefill/decode pools) take "
                "an interconnect"
            )

    def _path_prober(self, decode_view: Sequence[Replica]) -> PathProber:
        """The admission controller's cross-handoff completion probe.

        ``decode_view`` is how this core sees the decode pool — the raw
        replica list on the event cores, the pool's
        :class:`~repro.cluster.fleetstate.FleetState` on the vectorized
        core — so the probe's decode term rides whatever machinery the
        core already prices stage-2 with.
        """
        assert self.admission is not None
        return PathProber(
            self._prefill_pool,
            decode_view,
            self.interconnect,
            self.admission.price_cache,
            batched=self.admission.batched,
        )

    def _hint_prefix(self, request: Request) -> None:
        """Stamp the routing-time prefix-residency hint on an arrival.

        A side-effect-free ``peek`` at the session holder's cache: the
        hint lets admission and routing price the turn's discounted
        prompt pass (``prefill_len``) without perturbing LRU state. The
        authoritative ``lookup`` happens at admission on whichever
        replica actually wins the request — a turn routed away from its
        holder has its hint overwritten by the (missing) lookup there.
        """
        holder = self._session_holder.get(request.session_id)
        if holder is None:
            return
        cache = self.replicas[holder].prefix_cache
        if cache is not None and request.prefix_len > 0:
            request.cached_prefix_len = cache.peek(
                request.session_id, request.prefix_len
            )

    def _spawn_followups(
        self,
        replica: Replica,
        trace: List[Request],
        stats: Dict[str, Dict[str, int]],
        push,
    ) -> None:
        """Schedule each finished turn's follow-up as a fresh arrival.

        ``push(time_s, request)`` schedules one ``ARRIVAL`` on the
        calling core's queue/calendar. The follow-up's lengths and think
        time were pre-drawn at build time; only its arrival time (parent
        finish + think time), request id (its position in the growing
        trace — identical across cores because events drain in the same
        order), and absolute deadline are stamped here. A rejected turn
        never finishes, so its session's remaining turns are simply
        never scheduled.
        """
        for parent in replica.followups:
            turn = parent.followup
            arrival = parent.finish_s + turn.think_time_s
            turn.request_id = len(trace)
            turn.arrival_s = arrival
            turn.arrival_stamped = True
            if turn.deadline_budget_s > 0:
                turn.deadline_s = arrival + turn.deadline_budget_s
            trace.append(turn)
            stats[turn.tenant]["submitted"] += 1
            push(arrival, turn)
        replica.followups.clear()

    def _ship_transfers(self, replica: Replica, push, now: float) -> None:
        """Schedule a ``KV_TRANSFER`` for every outbound handoff.

        ``push(time_s, payload)`` schedules one transfer event on the
        calling core's queue/calendar; each request's KV cache is in
        flight for the interconnect's cost of its *current* context
        (prompt + the first token).
        """
        interconnect = self.interconnect
        for request in replica.outbound:
            push(
                now + interconnect.transfer_seconds(request.context_len),
                request,
            )
        replica.outbound.clear()

    def run(self, requests: Sequence[Request]) -> ClusterSummary:
        """Serve an arrival-stamped trace; returns the cluster summary."""
        if not requests:
            raise ConfigurationError("requests must be non-empty")
        queue = EventQueue()
        trace = sorted(requests, key=lambda r: r.arrival_s)
        stats: Dict[str, Dict[str, int]] = {}
        for request in trace:
            tally = stats.setdefault(
                request.tenant,
                {"submitted": 0, "rejected": 0, "deferrals": 0},
            )
            tally["submitted"] += 1
            queue.push(request.arrival_s, EventKind.ARRIVAL, request)

        disaggregated = self._disaggregated
        prober = (
            self._path_prober(self._decode_pool)
            if disaggregated and self.admission is not None
            else None
        )

        def push_transfer(time_s: float, request: Request) -> None:
            queue.push(time_s, EventKind.KV_TRANSFER, request)

        def push_followup(time_s: float, request: Request) -> None:
            queue.push(time_s, EventKind.ARRIVAL, request)

        # Inline macro-bursts below bypass the queue, so its clock can
        # stall before the true end of the run; the makespan is tracked
        # by hand — last popped event time, or last inlined completion.
        makespan = 0.0
        while not queue.empty:
            event = queue.pop()
            makespan = queue.now
            if event.kind is EventKind.ARRIVAL:
                request = event.payload
                if request.session_id is not None:
                    self._hint_prefix(request)
                if self.admission is not None:
                    decision, backoff = self.admission.decide(
                        request,
                        prober if prober is not None else self.replicas,
                        queue.now,
                    )
                    if decision is AdmissionDecision.REJECT:
                        request.state = RequestState.REJECTED
                        stats[request.tenant]["rejected"] += 1
                        continue
                    if decision is AdmissionDecision.DEFER:
                        stats[request.tenant]["deferrals"] += 1
                        queue.push(
                            queue.now + backoff, EventKind.ARRIVAL, request
                        )
                        continue
                if disaggregated:
                    local = self.router.select_path(
                        request,
                        self._prefill_pool,
                        self._decode_pool,
                        self.interconnect,
                        queue.now,
                    )
                    if not 0 <= local < len(self._prefill_pool):
                        raise SimulationError(
                            f"router {self.router.name!r} returned prefill "
                            f"replica {local} of {len(self._prefill_pool)}"
                        )
                    index = self._prefill_indices[local]
                else:
                    index = self.router.select(
                        request, self.replicas, queue.now
                    )
                    if not 0 <= index < len(self.replicas):
                        raise SimulationError(
                            f"router {self.router.name!r} returned replica "
                            f"{index} of {len(self.replicas)}"
                        )
                if request.session_id is not None:
                    self._session_holder[request.session_id] = index
                replica = self.replicas[index]
                replica.enqueue(request)
                if replica.idle:
                    queue.push(queue.now, EventKind.ADMIT, index)
            elif event.kind is EventKind.KV_TRANSFER:
                request = event.payload
                request.transfer_done_s = queue.now
                request.phase = RequestPhase.DECODE
                local = self.router.select(
                    request, self._decode_pool, queue.now
                )
                if not 0 <= local < len(self._decode_pool):
                    raise SimulationError(
                        f"router {self.router.name!r} returned decode "
                        f"replica {local} of {len(self._decode_pool)}"
                    )
                index = self._decode_indices[local]
                replica = self.replicas[index]
                replica.enqueue(request)
                if replica.idle:
                    queue.push(queue.now, EventKind.ADMIT, index)
            else:  # ADMIT / STEP_DONE
                replica = self.replicas[event.payload]
                if event.kind is EventKind.ADMIT:
                    done_at = replica.poke(queue.now)
                else:
                    done_at = replica.on_step_done(queue.now)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                    if replica.outbound:
                        self._ship_transfers(replica, push_transfer, queue.now)
                # Inline step burst: while this replica's next completion
                # strictly precedes every pending event, nothing can
                # observe the fleet in between — run (and, when the batch
                # is frozen, macro-compress) the steps back-to-back
                # without a heap round-trip per step. Events pushed from
                # inside the burst keep the relative order the
                # event-per-step loop would have given them, so ties
                # still break identically. Completions inside the burst
                # happen at their own times, not the stalled queue clock
                # — follow-ups and KV handoffs are stamped with the
                # inline completion time.
                peek = queue.peek_time()
                while done_at is not None and (
                    peek is None or done_at < peek
                ):
                    compressed = replica.compress_run(done_at, peek)
                    if compressed is not None:
                        done_at, makespan = compressed
                        continue
                    makespan = done_at
                    done_at = replica.on_step_done(makespan)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                        peek = queue.peek_time()
                    if replica.outbound:
                        self._ship_transfers(replica, push_transfer, makespan)
                        peek = queue.peek_time()
                if done_at is not None:
                    queue.push(done_at, EventKind.STEP_DONE, event.payload)

        return self._summarize(trace, stats, makespan)

    def _summarize(
        self,
        trace: Sequence[Request],
        stats: Dict[str, Dict[str, int]],
        makespan: float,
        router_cache: Optional[Dict[str, float]] = None,
        probe_memo: Optional[Dict[str, float]] = None,
    ) -> ClusterSummary:
        """Fold the drained fleet into a :class:`ClusterSummary`.

        Shared by the event-driven and vectorized cores — the report
        layer is identical; only the event loops differ. ``router_cache``
        overrides the admission-price counters (the vectorized core
        reports its dense-table statistics); ``None`` reads the router's
        price cache. ``probe_memo`` carries the vectorized core's
        fleet-version verdict-memo counters (empty otherwise).
        """
        reports: List[ReplicaReport] = []
        for replica in self.replicas:
            summary = replica.finalize(makespan)
            reports.append(
                ReplicaReport(
                    replica_id=replica.replica_id,
                    system=summary.system,
                    model=replica.workload_name,
                    requests_served=replica.requests_served,
                    tokens_generated=summary.tokens_generated,
                    iterations=summary.iterations,
                    reschedules=summary.reschedules,
                    busy_seconds=summary.total_seconds,
                    utilization=summary.utilization,
                    acceptance_rate=replica.acceptance_rate,
                    expert_token_visits=replica.expert_token_visits,
                    mean_active_experts=replica.mean_active_experts,
                    summary=summary,
                    role=replica.role,
                    requests_transferred=replica.requests_transferred,
                )
            )
        total = sum(report.requests_served for report in reports)
        if router_cache is None:
            price_cache = self.router.price_cache
            router_cache = (
                dict(price_cache.stats()) if price_cache is not None else {}
            )
        pools: Dict[str, PoolReport] = {}
        ttft: Dict[str, float] = {}
        transfer_wait: Dict[str, float] = {}
        if self._disaggregated:
            pools = _pool_reports(reports, makespan)
            ttft = _sample_stats(
                [
                    r.first_token_s - r.arrival_s
                    for r in trace
                    if r.first_token_s >= 0.0
                ]
            )
            transfer_wait = _sample_stats(
                [
                    r.transfer_done_s - r.first_token_s
                    for r in trace
                    if r.transfer_done_s >= 0.0
                ]
            )
        step_macro: Dict[str, float] = {}
        for replica in self.replicas:
            for key, value in replica.step_macro.items():
                step_macro[key] = step_macro.get(key, 0.0) + value
        return ClusterSummary(
            router=self.router.name,
            model=self.replicas[0].workload_name,
            makespan_seconds=makespan,
            total_requests=total,
            replicas=reports,
            router_cache=router_cache,
            probe_memo=probe_memo if probe_memo is not None else {},
            tenants=_tenant_reports(trace, stats),
            pools=pools,
            ttft=ttft,
            transfer_wait=transfer_wait,
            prefix_cache=_prefix_cache_stats(self.replicas),
            sessions=_session_stats(trace),
            step_macro=step_macro,
        )


class VectorizedClusterSimulator(ClusterSimulator):
    """The array-backed cluster core (``core_mode="vectorized"``).

    Same cluster semantics as :class:`ClusterSimulator` — the equivalence
    suite pins the two cores' summaries bit-for-bit — built on three
    structural changes:

    * The event queue is a :class:`~repro.serving.clock.EventCalendar`:
      the (pre-sorted) arrival trace lives in a flat array lane consumed
      by cursor, and only dynamically scheduled events (``ADMIT``,
      ``STEP_DONE``, deferral re-arrivals) touch a heap — of plain
      tuples, not ``Event`` objects.
    * The fleet is wrapped in a
      :class:`~repro.cluster.fleetstate.FleetState`: per-replica load
      counters mirrored into fleet-wide numpy arrays (refreshed lazily
      from a dirty set), so routing probes and admission projections run
      as vector operations across all replicas at once against dense
      price tables.
    * Replicas must be :class:`~repro.cluster.fleetstate.VectorReplica`
      instances (primitive slot-array step bookkeeping); the scenario
      builder constructs them when the spec selects the vectorized core.
    """

    def __init__(
        self,
        replicas: Sequence[Replica],
        router: Router,
        admission: Optional[SLOAdmissionController] = None,
        interconnect: Optional[Interconnect] = None,
    ) -> None:
        super().__init__(replicas, router, admission, interconnect)
        if self._disaggregated:
            # Only the decode pool gets the array-backed fleet view: it
            # is where the per-arrival probes fan out (stage-2 routing,
            # the PathProber's decode term), while the prefill pool is
            # probed through the scalar prompt-pass pricer. One
            # FleetState over a mixed-role fleet would mix pool
            # semantics in every probe.
            self.fleet = None
            self._decode_fleet = FleetState(self._decode_pool)
        else:
            self.fleet = FleetState(self.replicas)

    def run(self, requests: Sequence[Request]) -> ClusterSummary:
        """Serve an arrival-stamped trace; returns the cluster summary."""
        if not requests:
            raise ConfigurationError("requests must be non-empty")
        if self._disaggregated:
            return self._run_disaggregated(requests)
        trace = sorted(requests, key=lambda r: r.arrival_s)
        stats: Dict[str, Dict[str, int]] = {}
        for request in trace:
            tally = stats.setdefault(
                request.tenant,
                {"submitted": 0, "rejected": 0, "deferrals": 0},
            )
            tally["submitted"] += 1
        calendar = EventCalendar(
            [request.arrival_s for request in trace], trace
        )

        fleet = self.fleet
        replicas = self.replicas
        router = self.router
        admission = self.admission
        # Run prefetching only pays off when something consults the price
        # tables (a price-aware router or an admission controller).
        prefetch = router.price_cache is not None or admission is not None
        # Inlined step bursts below bypass the calendar, so its clock can
        # stall before the true end of the run; the makespan is tracked by
        # hand — last popped event time, or the last inlined completion.
        makespan = 0.0
        # Bound-method locals: the drain loop below runs once per arrival
        # — millions of times per trace — so every attribute walk it
        # skips is wall-clock.
        pop_arrival = calendar.pop_arrival
        push_arrival_after = calendar.push_arrival_after
        select = router.select

        def push_followup(time_s: float, request: Request) -> None:
            calendar.push(time_s, ARRIVAL_CODE, request)

        probe_min = getattr(fleet, "probe_min_completion", None)
        # The admission controller's batched fast path, inlined: one
        # verdict-memo probe and a handful of plain dict/float ops per
        # storm member, no method-call round trip through decide().
        # Mirrors SLOAdmissionController.decide branch for branch (the
        # equivalence suite pins the outcomes); non-batched controllers
        # keep the reference call.
        inline_admission = (
            admission is not None
            and admission.batched
            and probe_min is not None
        )
        if inline_admission:
            policies = admission.policies
            defers_used = admission._defers_used
            probe_batch = getattr(fleet, "probe_min_batch", None)
            upcoming = calendar.upcoming_arrivals
            # Version-keyed verdict rows: request_id -> projected best
            # completion, batch-priced for the current fleet version.
            # Batching only engages once a frozen segment proves itself
            # long (segment_probes) — short admit-heavy segments would
            # waste most of a lookahead batch, and their repeat lookups
            # already answer from the per-request verdict memo.
            batch_rows: Dict[int, float] = {}
            batch_version = -1
            probe_version = -1
            segment_probes = 0
            row_hits = 0
            gated_tenants = {
                tenant
                for tenant, tenant_policy in policies.items()
                if tenant_policy.action != "admit"
            }
        # Flat per-tenant admission counters, folded back into ``stats``
        # after the loop: one small-dict update per deferral/rejection
        # instead of a nested two-level lookup on the multi-million
        # deferral storms the gated tenants generate.
        deferral_counts = {tenant: 0 for tenant in stats}
        rejected_counts = {tenant: 0 for tenant in stats}
        replica_count = len(replicas)
        price_cold = prefetch
        warm_streak = 0
        # Sessionless traces never spawn follow-up arrivals from a step
        # completion, so a foreign STEP_DONE cannot schedule an
        # interaction event inside another replica's macro run — the
        # burst horizon relaxes from "every pending event" to "the next
        # interaction event" (peek_interaction_time). Session traces
        # keep the strict horizon.
        sessions_active = any(
            request.session_id is not None for request in trace
        )
        while not calendar.empty:
            now, kind, payload = calendar.pop()
            if now > makespan:
                makespan = now
            if kind == ARRIVAL_CODE:
                # Arrival-run coalescing: when the presorted lane shows
                # more arrivals before the next non-arrival event, warm
                # the run's unseen price-table points in one dense pass,
                # then drain the whole run here — deferred re-arrivals
                # join it too — so back-to-back verdicts answer from the
                # fleet-version memo without an event-loop round trip
                # per member. Once the tables converge (a long streak of
                # runs pricing nothing new), the warm-up pass is skipped.
                if price_cold:
                    run_ahead = calendar.peek_arrival_run(ARRIVAL_RUN_PEEK)
                    if run_ahead:
                        priced = fleet.price_run(
                            [payload]
                            + calendar.arrival_run_payloads(run_ahead)
                        )
                        if priced:
                            warm_streak = 0
                        else:
                            warm_streak += 1
                            if warm_streak >= PRICE_RUN_WARM_STREAK:
                                price_cold = False
                members = 0
                while True:
                    members += 1
                    request = payload
                    if request.session_id is not None:
                        self._hint_prefix(request)
                    admitted = True
                    if inline_admission:
                        deadline = request.deadline_s
                        if deadline is not None:
                            policy = policies.get(request.tenant)
                            if policy is not None and policy.action != "admit":
                                # Verdict rows survive while the fleet
                                # version holds still (rejections and
                                # deferrals never bump it); a missing or
                                # stale row triggers one batched pass
                                # over the gated members coming up.
                                version = fleet.version
                                if version == batch_version:
                                    projected = batch_rows.get(
                                        request.request_id
                                    )
                                    if projected is not None:
                                        row_hits += 1
                                else:
                                    projected = None
                                if projected is None:
                                    if version == probe_version:
                                        segment_probes += 1
                                    else:
                                        probe_version = version
                                        segment_probes = 1
                                    mins = None
                                    if segment_probes >= 4:
                                        gated = [request]
                                        for member in upcoming(
                                            VERDICT_BATCH_LOOKAHEAD
                                        ):
                                            if (
                                                member.deadline_s
                                                is not None
                                                and member.tenant
                                                in gated_tenants
                                            ):
                                                gated.append(member)
                                        if len(gated) > 1:
                                            mins = probe_batch(gated)
                                    if mins is None:
                                        projected = probe_min(request)
                                    else:
                                        rows = mins.tolist()
                                        batch_rows = {
                                            member.request_id: rows[j]
                                            for j, member in enumerate(
                                                gated
                                            )
                                        }
                                        batch_version = version
                                        projected = rows[0]
                                if now + projected > deadline:
                                    admitted = False
                                    if policy.action == "defer":
                                        used = defers_used.get(
                                            request.request_id, 0
                                        )
                                        if used < policy.max_defers:
                                            defers_used[
                                                request.request_id
                                            ] = used + 1
                                            deferral_counts[
                                                request.tenant
                                            ] += 1
                                            push_arrival_after(
                                                policy.defer_seconds,
                                                request,
                                            )
                                        else:
                                            request.state = (
                                                RequestState.REJECTED
                                            )
                                            rejected_counts[
                                                request.tenant
                                            ] += 1
                                    else:
                                        request.state = (
                                            RequestState.REJECTED
                                        )
                                        rejected_counts[
                                            request.tenant
                                        ] += 1
                    elif admission is not None:
                        decision, backoff = admission.decide(
                            request, fleet, now
                        )
                        if decision is AdmissionDecision.REJECT:
                            request.state = RequestState.REJECTED
                            rejected_counts[request.tenant] += 1
                            admitted = False
                        elif decision is AdmissionDecision.DEFER:
                            deferral_counts[request.tenant] += 1
                            push_arrival_after(backoff, request)
                            admitted = False
                    if admitted:
                        index = select(request, fleet, now)
                        if not 0 <= index < replica_count:
                            raise SimulationError(
                                f"router {router.name!r} returned replica "
                                f"{index} of {len(replicas)}"
                            )
                        if request.session_id is not None:
                            self._session_holder[request.session_id] = index
                        replica = replicas[index]
                        replica.enqueue(request)
                        fleet.mark_dirty(index)
                        if replica.idle:
                            calendar.push(now, ADMIT_CODE, index)
                    nxt = pop_arrival()
                    if nxt is None:
                        break
                    now, payload = nxt
                    if now > makespan:
                        makespan = now
                if members > 1:
                    fleet.runs_coalesced += 1
            else:  # ADMIT_CODE / STEP_DONE_CODE
                replica = replicas[payload]
                if kind == ADMIT_CODE:
                    done_at = replica.poke(now)
                else:
                    done_at = replica.on_step_done(now)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                # Inline step burst: while this replica's next completion
                # strictly precedes every event that could observe it, no
                # probe or admission can see the fleet in between — run
                # the steps back-to-back without a heap round-trip per
                # step. On a session trace the horizon is every pending
                # event (strict peek: a foreign completion may push a
                # follow-up arrival that must end the burst); on a
                # sessionless trace foreign STEP_DONE events touch only
                # their own replica, so the horizon relaxes to the next
                # *interaction* event — in the post-arrival drain phase
                # that is usually never, and whole request lifetimes run
                # inline. Strictly: an event *at* the horizon holds an
                # older sequence number than a fresh push, so it must win
                # the tie and be processed first. Frozen batches
                # macro-compress: compress_run executes the whole
                # finish-free run up to the horizon in closed form and
                # returns the new in-flight completion.
                if sessions_active:
                    horizon = calendar.peek_time()
                else:
                    horizon = calendar.peek_interaction_time()
                while done_at is not None and (
                    horizon is None or done_at < horizon
                ):
                    compressed = replica.compress_run(done_at, horizon)
                    if compressed is not None:
                        done_at, watermark = compressed
                        if watermark > makespan:
                            makespan = watermark
                        continue
                    if done_at > makespan:
                        makespan = done_at
                    done_at = replica.on_step_done(done_at)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                        horizon = calendar.peek_time()
                fleet.mark_dirty(payload)
                if done_at is not None:
                    calendar.push(done_at, STEP_DONE_CODE, payload)

        for tenant, count in deferral_counts.items():
            stats[tenant]["deferrals"] += count
        for tenant, count in rejected_counts.items():
            stats[tenant]["rejected"] += count
        if inline_admission:
            fleet.probe_hits += row_hits
        router_cache = (
            dict(fleet.price_stats())
            if self.router.price_cache is not None
            else {}
        )
        return self._summarize(
            trace, stats, makespan, router_cache, dict(fleet.memo_stats())
        )

    def _run_disaggregated(
        self, requests: Sequence[Request]
    ) -> ClusterSummary:
        """The role-typed twin of :meth:`run`.

        Same two-stage event semantics as the event core's disaggregated
        path — the equivalence suite pins the summaries — with the decode
        pool behind its :class:`~repro.cluster.fleetstate.FleetState`:
        stage-2 routing and the admission prober's decode term answer
        from the pool's dense tables and verdict memos. The colocated
        core's arrival-run coalescing is *not* applied here: handoff
        events (``KV_TRANSFER``) interleave with arrivals, so the
        frozen-segment invariant it relies on does not hold. Inline step
        bursts *are*: they engage only while a replica's next completion
        strictly precedes every pending event (arrivals and transfers
        included), which is exactly the window in which no probe can
        observe the fleet — outbound handoffs produced inside a burst
        are shipped at their inline completion times and re-peek the
        calendar, so a transfer landing before the next step still ends
        the burst.
        """
        trace = sorted(requests, key=lambda r: r.arrival_s)
        stats: Dict[str, Dict[str, int]] = {}
        for request in trace:
            tally = stats.setdefault(
                request.tenant,
                {"submitted": 0, "rejected": 0, "deferrals": 0},
            )
            tally["submitted"] += 1
        calendar = EventCalendar(
            [request.arrival_s for request in trace], trace
        )

        replicas = self.replicas
        router = self.router
        admission = self.admission
        interconnect = self.interconnect
        decode_fleet = self._decode_fleet
        prefill_pool = self._prefill_pool
        prefill_indices = self._prefill_indices
        decode_indices = self._decode_indices
        decode_local = {
            index: local for local, index in enumerate(decode_indices)
        }
        prober = (
            self._path_prober(decode_fleet)
            if admission is not None
            else None
        )
        def push_followup(time_s: float, request: Request) -> None:
            calendar.push(time_s, ARRIVAL_CODE, request)

        makespan = 0.0
        while not calendar.empty:
            now, kind, payload = calendar.pop()
            makespan = now
            if kind == ARRIVAL_CODE:
                request = payload
                if request.session_id is not None:
                    self._hint_prefix(request)
                if admission is not None:
                    decision, backoff = admission.decide(
                        request, prober, now
                    )
                    if decision is AdmissionDecision.REJECT:
                        request.state = RequestState.REJECTED
                        stats[request.tenant]["rejected"] += 1
                        continue
                    if decision is AdmissionDecision.DEFER:
                        stats[request.tenant]["deferrals"] += 1
                        calendar.push_arrival_after(backoff, request)
                        continue
                local = router.select_path(
                    request, prefill_pool, decode_fleet, interconnect, now
                )
                if not 0 <= local < len(prefill_pool):
                    raise SimulationError(
                        f"router {router.name!r} returned prefill "
                        f"replica {local} of {len(prefill_pool)}"
                    )
                index = prefill_indices[local]
                if request.session_id is not None:
                    self._session_holder[request.session_id] = index
                replica = replicas[index]
                replica.enqueue(request)
                if replica.idle:
                    calendar.push(now, ADMIT_CODE, index)
            elif kind == KV_TRANSFER_CODE:
                request = payload
                request.transfer_done_s = now
                request.phase = RequestPhase.DECODE
                local = router.select(request, decode_fleet, now)
                if not 0 <= local < len(decode_indices):
                    raise SimulationError(
                        f"router {router.name!r} returned decode "
                        f"replica {local} of {len(decode_indices)}"
                    )
                index = decode_indices[local]
                replica = replicas[index]
                replica.enqueue(request)
                decode_fleet.mark_dirty(local)
                if replica.idle:
                    calendar.push(now, ADMIT_CODE, index)
            else:  # ADMIT_CODE / STEP_DONE_CODE
                replica = replicas[payload]
                if kind == ADMIT_CODE:
                    done_at = replica.poke(now)
                else:
                    done_at = replica.on_step_done(now)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                if replica.outbound:
                    for request in replica.outbound:
                        calendar.push(
                            now
                            + interconnect.transfer_seconds(
                                request.context_len
                            ),
                            KV_TRANSFER_CODE,
                            request,
                        )
                    replica.outbound.clear()
                # Inline step burst (see the colocated loop): sound here
                # because it only engages while this replica's next
                # completion strictly precedes every pending event —
                # transfers and arrivals included — and every push from
                # inside the burst uses the inline completion time, then
                # re-peeks.
                peek = calendar.peek_time()
                while done_at is not None and (
                    peek is None or done_at < peek
                ):
                    compressed = replica.compress_run(done_at, peek)
                    if compressed is not None:
                        done_at, makespan = compressed
                        continue
                    makespan = done_at
                    done_at = replica.on_step_done(makespan)
                    if replica.followups:
                        self._spawn_followups(
                            replica, trace, stats, push_followup
                        )
                        peek = calendar.peek_time()
                    if replica.outbound:
                        for request in replica.outbound:
                            calendar.push(
                                makespan
                                + interconnect.transfer_seconds(
                                    request.context_len
                                ),
                                KV_TRANSFER_CODE,
                                request,
                            )
                        replica.outbound.clear()
                        peek = calendar.peek_time()
                local = decode_local.get(payload)
                if local is not None:
                    decode_fleet.mark_dirty(local)
                if done_at is not None:
                    calendar.push(done_at, STEP_DONE_CODE, payload)

        return self._summarize(
            trace, stats, makespan, None, dict(decode_fleet.memo_stats())
        )


def _pool_reports(
    reports: Sequence[ReplicaReport], makespan: float
) -> Dict[str, PoolReport]:
    """Roll per-replica reports up into per-role pool reports."""
    pools: Dict[str, PoolReport] = {}
    for role in ("prefill", "decode"):
        members = [report for report in reports if report.role == role]
        if not members:
            continue
        busy = sum(report.busy_seconds for report in members)
        capacity = len(members) * makespan
        pools[role] = PoolReport(
            role=role,
            replicas=len(members),
            requests_served=sum(r.requests_served for r in members),
            requests_transferred=sum(
                r.requests_transferred for r in members
            ),
            tokens_generated=sum(r.tokens_generated for r in members),
            busy_seconds=busy,
            utilization=min(1.0, busy / capacity) if capacity > 0 else 0.0,
            queueing_seconds=sum(
                r.summary.queueing_seconds for r in members
            ),
        )
    return pools


def _sample_stats(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p99 / count over a latency sample list.

    The shape both handoff metrics (time-to-first-token, KV-transfer
    wait) report; an empty sample reports zeros rather than omitting
    keys, so result consumers can rely on the fields existing whenever
    the run was disaggregated.
    """
    count = len(samples)
    return {
        "mean_s": sum(samples) / count if count else 0.0,
        "p50_s": latency_percentile_of(samples, 50, empty_value=0.0),
        "p99_s": latency_percentile_of(samples, 99, empty_value=0.0),
        "samples": float(count),
    }


def _prefix_cache_stats(replicas: Sequence[Replica]) -> Dict[str, float]:
    """Fleet-wide prefix-cache counters (empty when no replica caches).

    Counters are summed across replicas and the hit rate recomputed
    from the sums — averaging per-replica rates would weight a
    one-lookup replica the same as a thousand-lookup one.
    """
    counters = [
        replica.prefix_cache.stats()
        for replica in replicas
        if replica.prefix_cache is not None
    ]
    if not counters:
        return {}
    merged = {
        key: float(sum(c[key] for c in counters))
        for key in ("hits", "misses", "evictions", "cached_tokens")
    }
    lookups = merged["hits"] + merged["misses"]
    merged["hit_rate"] = merged["hits"] / lookups if lookups else 0.0
    return merged


def _session_stats(trace: Sequence[Request]) -> Dict[str, object]:
    """Session-workload rollup (empty when the trace has no sessions).

    ``turns_submitted`` counts session turns that actually entered the
    simulator — follow-ups whose predecessor was rejected are never
    scheduled and never appear in the trace. ``followup_latency`` covers
    non-opening turns only: opening turns are indistinguishable from
    independent requests, while follow-up latency is where prefix reuse
    and affinity routing show up.
    """
    turns = [r for r in trace if r.session_id is not None]
    if not turns:
        return {}
    finished = [r for r in turns if r.is_finished]
    return {
        "sessions": float(len({r.session_id for r in turns})),
        "turns_submitted": float(len(turns)),
        "turns_served": float(len(finished)),
        "cached_prefix_tokens": float(
            sum(r.cached_prefix_len for r in finished)
        ),
        "followup_latency": _sample_stats(
            [
                max(0.0, r.finish_s - r.arrival_s)
                for r in finished
                if r.turn_index > 0
            ]
        ),
    }


def _tenant_reports(
    trace: Sequence[Request], stats: Dict[str, Dict[str, int]]
) -> Dict[str, TenantReport]:
    """Fold per-request outcomes into per-tenant reports.

    ``trace`` is the full arrival-ordered request list (including rejected
    requests); ``stats`` the simulator's per-tenant admission counters.
    Requests are grouped by tenant in a single pass over the trace (not
    one rescan per tenant — O(tenants x trace) hurts at fleet scale).
    Attainment is computed over *submitted* requests so rejections count
    as SLO misses.
    """
    members_by_tenant: Dict[str, List[Request]] = {
        tenant: [] for tenant in stats
    }
    for request in trace:
        members_by_tenant[request.tenant].append(request)
    reports: Dict[str, TenantReport] = {}
    for tenant, tally in stats.items():
        members = members_by_tenant[tenant]
        finished = [r for r in members if r.is_finished]
        latencies = [max(0.0, r.finish_s - r.arrival_s) for r in finished]
        met = sum(1 for r in finished if r.met_deadline)
        budgets = [
            r.deadline_s - r.arrival_s
            for r in members
            if r.deadline_s is not None
        ]
        submitted = tally["submitted"]
        reports[tenant] = TenantReport(
            tenant=tenant,
            submitted=submitted,
            admitted=submitted - tally["rejected"],
            rejected=tally["rejected"],
            deferrals=tally["deferrals"],
            served=len(finished),
            p50_latency_s=latency_percentile_of(latencies, 50, empty_value=0.0),
            p99_latency_s=latency_percentile_of(latencies, 99, empty_value=0.0),
            mean_latency_s=(
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            slo_p99_seconds=max(budgets) if budgets else 0.0,
            slo_attainment=met / submitted if submitted else 0.0,
        )
    return reports
