"""Multi-replica cluster serving on one simulated event timeline.

The cluster simulator merges every replica's events on a single
:class:`~repro.serving.clock.EventQueue`:

* ``ARRIVAL`` — the router assigns the request to a replica; if that
  replica is idle, an ``ADMIT`` is scheduled at the same timestamp.
* ``ADMIT`` — the replica pulls waiting requests into its batch and
  schedules its next ``STEP_DONE``.
* ``STEP_DONE`` — the replica completes one decoding iteration, refills
  freed slots, and reschedules itself while it has work.

Replicas advance independently — one can be three iterations ahead of
another — which is exactly the behavior a wall-clock cluster would show,
and what makes per-replica utilization and FC-migration counts meaningful
evaluation outputs (cf. C2CServe / HERMES treating the cluster, not the
engine, as the unit of evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.cluster.replica import Replica
from repro.cluster.router import Router
from repro.errors import ConfigurationError, SimulationError
from repro.serving.clock import EventKind, EventQueue
from repro.serving.metrics import RunSummary, latency_percentile_of
from repro.serving.request import Request


@dataclass(frozen=True)
class ReplicaReport:
    """Per-replica results of one cluster run.

    Attributes:
        replica_id: Index within the cluster.
        system: The replica's system name.
        model: The workload served (the MoE variant's name when sparse —
            mixed fleets report per-replica models).
        requests_served: Requests routed here and finished.
        tokens_generated: Accepted output tokens.
        iterations: Decoding iterations executed.
        reschedules: FC migrations between PUs and FC-PIM.
        busy_seconds: Prefill + decode + draft time.
        utilization: ``busy_seconds`` over the cluster makespan.
        acceptance_rate: Observed fraction of drafted tokens accepted
            (1.0 when the replica never speculated).
        expert_token_visits: Total token-expert visits routed through the
            replica's MoE FFN (0 for dense replicas).
        mean_active_experts: Mean distinct experts activated per
            iteration (0 for dense replicas).
        summary: The replica's full run summary.
    """

    replica_id: int
    system: str
    model: str
    requests_served: int
    tokens_generated: int
    iterations: int
    reschedules: int
    busy_seconds: float
    utilization: float
    acceptance_rate: float
    expert_token_visits: int
    mean_active_experts: float
    summary: RunSummary


@dataclass(frozen=True)
class ClusterSummary:
    """Aggregated results of one cluster run.

    Attributes:
        router: Routing policy name.
        model: Model name.
        makespan_seconds: Arrival of the first request to the last
            completion, on the simulated clock.
        total_requests: Requests served across all replicas.
        replicas: Per-replica reports, in replica order.
        router_cache: Admission-price-cache counters (hits, misses,
            hit_rate, entries, max_entries) for price-aware routers;
            empty for stateless policies.
    """

    router: str
    model: str
    makespan_seconds: float
    total_requests: int
    replicas: List[ReplicaReport]
    router_cache: Dict[str, float] = field(default_factory=dict)

    @property
    def request_latencies(self) -> List[float]:
        """Pooled arrival-to-``<eos>`` latencies across replicas."""
        pooled: List[float] = []
        for report in self.replicas:
            pooled.extend(report.summary.request_latencies)
        return pooled

    @property
    def total_reschedules(self) -> int:
        """FC migrations across all replicas (lower is steadier)."""
        return sum(report.reschedules for report in self.replicas)

    @property
    def tokens_generated(self) -> int:
        return sum(report.tokens_generated for report in self.replicas)

    @property
    def tokens_per_second(self) -> float:
        """Cluster goodput: accepted tokens per makespan second."""
        if self.makespan_seconds <= 0:
            return 0.0
        return self.tokens_generated / self.makespan_seconds

    @property
    def mean_latency(self) -> float:
        latencies = self.request_latencies
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    def latency_percentile(self, percentile: float) -> float:
        """Pooled per-request latency percentile (e.g. 50, 99)."""
        return latency_percentile_of(self.request_latencies, percentile)


class ClusterSimulator:
    """Drives N replicas through an arrival trace under a routing policy."""

    def __init__(self, replicas: Sequence[Replica], router: Router) -> None:
        if not replicas:
            raise ConfigurationError("cluster needs at least one replica")
        self.replicas = list(replicas)
        self.router = router

    def run(self, requests: Sequence[Request]) -> ClusterSummary:
        """Serve an arrival-stamped trace; returns the cluster summary."""
        if not requests:
            raise ConfigurationError("requests must be non-empty")
        queue = EventQueue()
        for request in sorted(requests, key=lambda r: r.arrival_s):
            queue.push(request.arrival_s, EventKind.ARRIVAL, request)

        while not queue.empty:
            event = queue.pop()
            if event.kind is EventKind.ARRIVAL:
                request = event.payload
                index = self.router.select(request, self.replicas, queue.now)
                if not 0 <= index < len(self.replicas):
                    raise SimulationError(
                        f"router {self.router.name!r} returned replica "
                        f"{index} of {len(self.replicas)}"
                    )
                replica = self.replicas[index]
                replica.enqueue(request)
                if replica.idle:
                    queue.push(queue.now, EventKind.ADMIT, index)
            elif event.kind is EventKind.ADMIT:
                replica = self.replicas[event.payload]
                done_at = replica.poke(queue.now)
                if done_at is not None:
                    queue.push(done_at, EventKind.STEP_DONE, event.payload)
            else:  # STEP_DONE
                replica = self.replicas[event.payload]
                done_at = replica.on_step_done(queue.now)
                if done_at is not None:
                    queue.push(done_at, EventKind.STEP_DONE, event.payload)

        makespan = queue.now
        reports: List[ReplicaReport] = []
        for replica in self.replicas:
            summary = replica.finalize(makespan)
            reports.append(
                ReplicaReport(
                    replica_id=replica.replica_id,
                    system=summary.system,
                    model=replica.workload_name,
                    requests_served=replica.requests_served,
                    tokens_generated=summary.tokens_generated,
                    iterations=summary.iterations,
                    reschedules=summary.reschedules,
                    busy_seconds=summary.total_seconds,
                    utilization=summary.utilization,
                    acceptance_rate=replica.acceptance_rate,
                    expert_token_visits=replica.expert_token_visits,
                    mean_active_experts=replica.mean_active_experts,
                    summary=summary,
                )
            )
        total = sum(report.requests_served for report in reports)
        price_cache = self.router.price_cache
        return ClusterSummary(
            router=self.router.name,
            model=self.replicas[0].workload_name,
            makespan_seconds=makespan,
            total_requests=total,
            replicas=reports,
            router_cache=(
                dict(price_cache.stats()) if price_cache is not None else {}
            ),
        )
