"""Unit helpers and conversion constants.

All simulator-internal quantities use SI base units: seconds, bytes,
FLOPs, joules, watts, square millimetres (area is the one deliberate
exception, matching the paper's mm^2 convention). These helpers exist so
that configuration code reads like the paper ("312 TFLOPS", "1935 GB/s")
instead of raw exponents.
"""

from __future__ import annotations

# -- scale prefixes -----------------------------------------------------------

KILO = 1e3
MEGA = 1e6
GIGA = 1e9
TERA = 1e12
PETA = 1e15

MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12

# -- binary capacity ----------------------------------------------------------

KiB = 1024
MiB = 1024 ** 2
GiB = 1024 ** 3


def tflops(value: float) -> float:
    """Convert teraFLOP/s to FLOP/s."""
    return value * TERA


def gflops(value: float) -> float:
    """Convert gigaFLOP/s to FLOP/s."""
    return value * GIGA


def gb_per_s(value: float) -> float:
    """Convert GB/s (decimal, as vendors quote bandwidth) to bytes/s."""
    return value * GIGA


def tb_per_s(value: float) -> float:
    """Convert TB/s to bytes/s."""
    return value * TERA


def gib(value: float) -> float:
    """Convert GiB to bytes."""
    return value * GiB


def mhz(value: float) -> float:
    """Convert MHz to Hz."""
    return value * MEGA


def ghz(value: float) -> float:
    """Convert GHz to Hz."""
    return value * GIGA


def ns(value: float) -> float:
    """Convert nanoseconds to seconds."""
    return value * NANO


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * MICRO


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * MILLI


def pj(value: float) -> float:
    """Convert picojoules to joules."""
    return value * PICO


def nj(value: float) -> float:
    """Convert nanojoules to joules."""
    return value * NANO


def to_ms(seconds: float) -> float:
    """Express seconds in milliseconds (for reporting)."""
    return seconds / MILLI


def to_us(seconds: float) -> float:
    """Express seconds in microseconds (for reporting)."""
    return seconds / MICRO


def to_gb(num_bytes: float) -> float:
    """Express bytes in decimal gigabytes (for reporting)."""
    return num_bytes / GIGA


def to_tflops(flops_per_s: float) -> float:
    """Express FLOP/s in TFLOP/s (for reporting)."""
    return flops_per_s / TERA
